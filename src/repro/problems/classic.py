"""Classical graph problems used as motivation in Sections 1.4 and 3.

All problems are phrased as validity predicates on node labellings, following
the paper's conventions:

* *subset problems* label nodes with 0/1 (maximal independent set, vertex
  cover, dominating set);
* *partition problems* label nodes with colours (vertex colouring);
* *decision problems* follow the accept/reject convention: every node accepts
  a yes-instance, at least one node rejects a no-instance (Eulerian decision).
"""

from __future__ import annotations

from typing import Any

from repro.graphs.graph import Graph, Node
from repro.graphs.matching import is_vertex_cover, minimum_vertex_cover
from repro.problems.base import GraphProblem


class MaximalIndependentSet(GraphProblem):
    """Label an independent set that cannot be extended (Section 1.4)."""

    outputs = (0, 1)

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        chosen = {node for node, value in assignment.items() if value == 1}
        # Independence.
        for u, v in graph.edges:
            if u in chosen and v in chosen:
                return False
        # Maximality: every unchosen node has a chosen neighbour.
        for node in graph.nodes:
            if node not in chosen and not any(
                neighbour in chosen for neighbour in graph.neighbors(node)
            ):
                return False
        return True


class VertexColouring(GraphProblem):
    """Proper vertex colouring with a fixed palette (Section 1.4 uses 3 colours)."""

    def __init__(self, colours: int = 3) -> None:
        if colours < 1:
            raise ValueError("at least one colour is needed")
        self._colours = colours
        self.outputs = tuple(range(1, colours + 1))

    @property
    def name(self) -> str:
        return f"VertexColouring({self._colours})"

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        if not all(assignment.get(node) in self.outputs for node in graph.nodes):
            return False
        return all(assignment[u] != assignment[v] for u, v in graph.edges)


class EulerianDecision(GraphProblem):
    """Decide whether the graph is Eulerian (Section 1.4's decision example).

    On a yes-instance the unique admissible solution labels every node 1; on a
    no-instance any labelling with at least one 0 is admissible.
    """

    outputs = (0, 1)

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        if graph.is_eulerian():
            return all(assignment.get(node) == 1 for node in graph.nodes)
        return any(assignment.get(node) == 0 for node in graph.nodes)


class VertexCover(GraphProblem):
    """Vertex cover, optionally with an approximation guarantee (Section 3.3).

    With ``approximation_ratio=None`` any cover is admissible; otherwise the
    cover must also be within the given factor of a minimum cover (computed
    exactly, so use small graphs when a ratio is requested).
    """

    outputs = (0, 1)

    def __init__(self, approximation_ratio: float | None = None) -> None:
        if approximation_ratio is not None and approximation_ratio < 1:
            raise ValueError("an approximation ratio must be at least 1")
        self._ratio = approximation_ratio

    @property
    def name(self) -> str:
        if self._ratio is None:
            return "VertexCover"
        return f"VertexCover(ratio={self._ratio})"

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        cover = {node for node, value in assignment.items() if value == 1}
        if not is_vertex_cover(graph, cover):
            return False
        if self._ratio is None:
            return True
        optimum = len(minimum_vertex_cover(graph))
        if optimum == 0:
            return len(cover) == 0
        return len(cover) <= self._ratio * optimum


class DominatingSet(GraphProblem):
    """Dominating set: every node is chosen or has a chosen neighbour."""

    outputs = (0, 1)

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        chosen = {node for node, value in assignment.items() if value == 1}
        return all(
            node in chosen or any(neighbour in chosen for neighbour in graph.neighbors(node))
            for node in graph.nodes
        )


class DegreeLabelling(GraphProblem):
    """Every node outputs its own degree (a trivially local problem)."""

    def __init__(self, max_degree: int = 16) -> None:
        self.outputs = tuple(range(max_degree + 1))

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        return all(assignment.get(node) == graph.degree(node) for node in graph.nodes)
