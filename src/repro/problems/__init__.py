"""Graph problems (Section 1.4) and adversarial verification of algorithms.

* :mod:`~repro.problems.base` -- the :class:`GraphProblem` interface.
* :mod:`~repro.problems.classic` -- the classical problems the paper uses as
  motivation: maximal independent set, vertex colouring, Eulerian decision,
  vertex cover and friends.
* :mod:`~repro.problems.separating` -- the three bespoke problems that
  separate the classes (Theorems 11, 13 and 17).
* :mod:`~repro.problems.verification` -- ``solves(algorithm, problem, ...)``:
  the adversarial check that an algorithm's output is a valid solution for
  every (or every consistent) port numbering.
"""

from repro.problems.base import GraphProblem, enumerate_solutions
from repro.problems.classic import (
    DegreeLabelling,
    DominatingSet,
    EulerianDecision,
    MaximalIndependentSet,
    VertexColouring,
    VertexCover,
)
from repro.problems.separating import (
    LeafElectionInStars,
    OddOddNeighbours,
    SymmetryBreakingInMatchlessRegular,
)
from repro.problems.verification import find_counterexample, solves

__all__ = [
    "GraphProblem",
    "enumerate_solutions",
    "DegreeLabelling",
    "DominatingSet",
    "EulerianDecision",
    "MaximalIndependentSet",
    "VertexColouring",
    "VertexCover",
    "LeafElectionInStars",
    "OddOddNeighbours",
    "SymmetryBreakingInMatchlessRegular",
    "find_counterexample",
    "solves",
]
