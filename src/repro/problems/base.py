"""The graph-problem abstraction (Section 1.4).

A graph problem ``Pi`` associates with each graph ``G`` a set ``Pi(G)`` of
admissible solutions, each solution being a labelling ``S : V -> Y`` of the
nodes with values from a finite set.  Following the paper, problems are
specified here by a *validity predicate* (``is_solution``), which is all that
adversarial verification needs; for small graphs the admissible solutions can
also be enumerated explicitly.
"""

from __future__ import annotations

import abc
import itertools
from collections.abc import Iterator, Sequence
from typing import Any

from repro.graphs.graph import Graph, Node


class GraphProblem(abc.ABC):
    """A graph problem given by its validity predicate."""

    #: The finite output alphabet ``Y`` (used by :func:`enumerate_solutions`).
    outputs: tuple[Any, ...] = (0, 1)

    @property
    def name(self) -> str:
        """A human-readable name (defaults to the class name)."""
        return type(self).__name__

    @abc.abstractmethod
    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        """Whether ``assignment`` is an admissible solution for ``graph``."""

    def restrict_to_outputs(self, assignment: dict[Node, Any]) -> bool:
        """Whether every assigned value is in the output alphabet."""
        return all(value in self.outputs for value in assignment.values())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def enumerate_solutions(
    problem: GraphProblem, graph: Graph, outputs: Sequence[Any] | None = None
) -> Iterator[dict[Node, Any]]:
    """All admissible solutions of ``problem`` on ``graph`` (brute force).

    Intended for small witness graphs: the search space is
    ``|outputs| ** |V|``.
    """
    alphabet = tuple(outputs) if outputs is not None else problem.outputs
    nodes = graph.nodes
    for values in itertools.product(alphabet, repeat=len(nodes)):
        assignment = dict(zip(nodes, values))
        if problem.is_solution(graph, assignment):
            yield assignment


def has_solution(problem: GraphProblem, graph: Graph) -> bool:
    """Whether the problem admits at least one solution on ``graph``."""
    return next(enumerate_solutions(problem, graph), None) is not None
