"""Experiment E11 -- vertex cover in the weak models (Section 3.3 motivation).

The paper motivates the study of the weak models with the result that a
2-approximate vertex cover is computable even in MB(1).  We run the simpler
double-cover-matching algorithm (class VVc) on a family of graphs, verify that
its output is always a vertex cover, and measure the worst observed
approximation ratio against an exact minimum cover.  The classical analysis of
the underlying maximal matching guarantees the paper's MB(1) algorithm a
factor of 2; the simpler algorithm here is expected to stay within a factor of
3 on the tested inputs (measured, not asserted).
"""

from __future__ import annotations

from repro.algorithms.vertex_cover import DoubleCoverMatchingVertexCover, cover_from_outputs
from repro.execution.adversary import port_numberings_to_check
from repro.execution.runner import run as run_algorithm
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    figure9_graph,
    grid_graph,
    path_graph,
    random_bounded_degree_graph,
    star_graph,
)
from repro.graphs.matching import is_vertex_cover, minimum_vertex_cover


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E11",
        title="Vertex cover via double-cover matching",
        paper_reference="Section 3.3 (motivation; Astrand-Suomela [3])",
    )
    algorithm = DoubleCoverMatchingVertexCover()
    graphs = {
        "path_6": path_graph(6),
        "cycle_7": cycle_graph(7),
        "star_5": star_graph(5),
        "K_4": complete_graph(4),
        "grid_3x3": grid_graph(3, 3),
        "figure9": figure9_graph(),
        "random(12, max_deg 3)": random_bounded_degree_graph(12, 3, seed=11),
    }
    worst_ratio = 0.0
    for label, graph in graphs.items():
        optimum = len(minimum_vertex_cover(graph))
        always_cover = True
        worst_size = 0
        for numbering in port_numberings_to_check(
            graph, consistent_only=True, exhaustive_limit=50, samples=5
        ):
            outputs = run_algorithm(algorithm, graph, numbering).outputs
            cover = cover_from_outputs(outputs)
            always_cover = always_cover and is_vertex_cover(graph, cover)
            worst_size = max(worst_size, len(cover))
        ratio = worst_size / optimum if optimum else 1.0
        worst_ratio = max(worst_ratio, ratio)
        result.add(
            f"{label}: valid cover and ratio",
            "a vertex cover within a small constant factor",
            f"always a cover={always_cover}, |C|={worst_size}, OPT={optimum}, ratio={ratio:.2f}",
            always_cover and ratio <= 3.0 + 1e-9,
        )
    result.add(
        "worst observed approximation ratio",
        "2 for the MB(1) algorithm of [3]; <= 3 expected for this simpler variant",
        f"{worst_ratio:.2f}",
        worst_ratio <= 3.0 + 1e-9,
    )
    return result
