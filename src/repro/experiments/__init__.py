"""The experiment harness: every paper artefact as a paper-vs-measured table.

The experiments are indexed in DESIGN.md (E1-E12); each module's ``run()``
regenerates one figure/theorem/lemma and returns an
:class:`~repro.experiments.report.ExperimentResult`.  Use::

    from repro.experiments import run_all_experiments, format_report
    print(format_report(run_all_experiments()))

to regenerate the whole EXPERIMENTS.md table.
"""

from repro.experiments.report import ExperimentResult, Row, format_report

__all__ = [
    "ExperimentResult",
    "Row",
    "format_report",
    "EXPERIMENTS",
    "run_all_experiments",
    "run_experiment",
]


def __getattr__(name: str):
    # The registry imports the experiment modules, which in turn import large
    # parts of the library; resolve it lazily to keep ``import repro`` cheap.
    if name in {"EXPERIMENTS", "run_all_experiments", "run_experiment"}:
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
