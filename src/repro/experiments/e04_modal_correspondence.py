"""Experiment E4 -- the modal-logic characterisation (Theorem 2, Table 3).

Checks both halves of the capture theorem on concrete inputs:

* formula -> algorithm: compiled algorithms of every class agree with the
  extension of the formula in the matching Kripke encoding, and run within
  ``md(phi) + 1`` rounds;
* algorithm -> formula: the library machine of *every* class is pushed
  through the full round-trip pipeline
  (:func:`~repro.modal.correspondence.machine_roundtrip_report`): machine
  outputs, the hash-consed Table 4/5 formula's extension and the recompiled
  formula-algorithm's outputs must coincide on every adversarial port
  numbering, with the seed formula-algorithm running as a differential
  oracle against the compiled one.

The formula side runs on the compiled bitset model checker and the
executions stream through the batch engine (both via
:mod:`repro.modal.correspondence`); a final row cross-checks the compiled
checker against the seed reference checker on every encoding the experiment
touches.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.logic.engine import check_many
from repro.logic.syntax import And, Diamond, GradedDiamond, Not, Prop, Top, modal_depth
from repro.machines.library import reference_machine
from repro.modal.encoding import kripke_encoding, variant_for_class
from repro.machines.models import ProblemClass
from repro.machines.state_machine import FiniteStateMachine, algorithm_from_machine
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.correspondence import (
    algorithm_matches_formula,
    machine_roundtrip_report,
)
from repro.modal.formula_to_algorithm import algorithm_for_formula
from repro.problems.verification import worst_case_running_time

_GRAPHS = (star_graph(3), path_graph(4), cycle_graph(4), path_graph(2))

_FORMULA_CASES = (
    (ProblemClass.SB, Diamond(Diamond(Prop("deg1"), index=("*", "*")), index=("*", "*"))),
    (ProblemClass.MB, GradedDiamond(Prop("deg2"), grade=2, index=("*", "*"))),
    (ProblemClass.VB, And(Prop("deg2"), Diamond(Not(Prop("deg2")), index=(2, "*")))),
    (ProblemClass.SV, And(Prop("deg1"), Diamond(Top(), index=("*", 1)))),
    (ProblemClass.MV, GradedDiamond(Diamond(Prop("deg1"), index=("*", 1)), grade=2, index=("*", 2))),
    (ProblemClass.VV, And(Prop("deg2"), Diamond(Prop("deg1"), index=(1, 2)))),
)


def _tiny_machine() -> FiniteStateMachine:
    """A one-round SB machine: output 1 iff some neighbour has odd degree."""

    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return 1 if "O" in set(vector) else 0

    return FiniteStateMachine(
        delta_bound=3,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={0: "even", 1: "odd", 2: "even", 3: "odd"},
        message_table=message,
        transition_table=transition,
    )


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E4",
        title="Modal logics capture the constant-time classes",
        paper_reference="Theorem 2, Tables 3-5",
    )
    for problem_class, formula in _FORMULA_CASES:
        algorithm = algorithm_for_formula(formula, problem_class)
        matches = algorithm_matches_formula(algorithm, formula, problem_class, _GRAPHS)
        runtime = worst_case_running_time(
            algorithm,
            _GRAPHS,
            consistent_only=problem_class.requires_consistency,
            exhaustive_limit=100,
            samples=5,
        )
        bound = modal_depth(formula) + 1
        result.add(
            f"{problem_class}: formula -> algorithm",
            "algorithm realises ||phi||, time <= md(phi)+1",
            f"agrees={matches}, time={runtime} <= {bound}",
            matches and runtime <= bound,
        )

    # Differential sanity for the logic engine itself: on every encoding the
    # experiment uses, the compiled bitset checker and the seed reference
    # checker must produce identical extensions (batched per model).
    by_variant: dict = {}
    for case_class, formula in _FORMULA_CASES:
        by_variant.setdefault(variant_for_class(case_class), []).append(formula)
    engines_agree = True
    for variant, formulas in by_variant.items():
        for graph in _GRAPHS:
            encoding = kripke_encoding(graph, variant=variant)
            if check_many(encoding, formulas, engine="compiled") != check_many(
                encoding, formulas, engine="reference"
            ):
                engines_agree = False
    result.add(
        "compiled checker == seed checker",
        "bitset engine and reference agree on every E4 encoding",
        f"agree={engines_agree} over {len(_GRAPHS)} graphs x {len(by_variant)} encodings",
        engines_agree,
    )

    machine = _tiny_machine()
    formula = formula_for_machine(machine, ProblemClass.SB, running_time=1)
    wrapped = algorithm_from_machine(machine.as_state_machine())
    machine_matches = algorithm_matches_formula(wrapped, formula, ProblemClass.SB, _GRAPHS)
    result.add(
        "SB: algorithm -> formula",
        "formula captures the machine, md = running time",
        f"agrees={machine_matches}, md={modal_depth(formula)} (T=1)",
        machine_matches and modal_depth(formula) == 1,
    )

    # The full round trip for every class: machine -> hash-consed Table 4/5
    # formula -> compiled formula-algorithm, cross-checked (on the compiled
    # engine) against the seed formula-algorithm as a differential oracle.
    for problem_class in ProblemClass:
        report = machine_roundtrip_report(
            reference_machine(problem_class, delta=3),
            problem_class,
            running_time=1,
            graphs=_GRAPHS,
        )
        result.add(
            f"{problem_class}: machine -> formula -> algorithm",
            "round trip agrees on every adversarial numbering (compiled == seed)",
            f"agree={report.agree}, oracle={report.oracle_checked}, "
            f"instances={report.instances}, dag={report.dag_size} vs "
            f"tree={report.tree_size}, md={report.modal_depth}",
            report.agree and report.oracle_checked and report.modal_depth == 1,
        )
    return result
