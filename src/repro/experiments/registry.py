"""The experiment registry: one entry per reproduced paper artefact.

``run_experiment(experiment_id)`` executes a single experiment and
``run_all_experiments()`` regenerates every paper-vs-measured table; the
benchmark harness under ``benchmarks/`` wraps the same entry points with
timing.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    e01_port_numbering,
    e02_model_information,
    e03_hierarchy,
    e04_modal_correspondence,
    e05_theorem4,
    e06_history_simulations,
    e07_star_separation,
    e08_odd_odd_separation,
    e09_symmetric_numbering,
    e10_matchless_separation,
    e11_vertex_cover,
    e12_bisimulation_invariance,
)
from repro.experiments.report import ExperimentResult

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E1": e01_port_numbering.run,
    "E2": e02_model_information.run,
    "E3": e03_hierarchy.run,
    "E4": e04_modal_correspondence.run,
    "E5": e05_theorem4.run,
    "E6": e06_history_simulations.run,
    "E7": e07_star_separation.run,
    "E8": e08_odd_odd_separation.run,
    "E9": e09_symmetric_numbering.run,
    "E10": e10_matchless_separation.run,
    "E11": e11_vertex_cover.run,
    "E12": e12_bisimulation_invariance.run,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by its id (``E1`` .. ``E12``)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner()


def run_all_experiments() -> list[ExperimentResult]:
    """Run every experiment, in id order."""
    return [runner() for runner in EXPERIMENTS.values()]
