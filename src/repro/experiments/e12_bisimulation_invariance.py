"""Experiment E12 -- bisimulation invariance (Section 4.2, Fact 1).

Checks Fact 1 empirically on random graphs: worlds identified by the
(partition-refinement) bisimilarity relation satisfy exactly the same ML/MML
formulas, and g-bisimilar worlds the same GML formulas; also confirms that the
computed bisimilarity partition is a genuine bisimulation (conditions B1-B3).
"""

from __future__ import annotations

import random

from repro.algorithms.parity import SomeOddNeighbourAlgorithm
from repro.execution.engine import run_many
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import random_bounded_degree_graph
from repro.logic.bisimulation import (
    bisimilarity_partition,
    is_bisimulation,
    is_graded_bisimulation,
)
from repro.logic.engine import check_many
from repro.logic.syntax import And, Diamond, GradedDiamond, Not, Prop
from repro.modal.encoding import KripkeVariant, kripke_encoding


def _sample_formulas(indices, graded: bool):
    index = sorted(indices, key=repr)[0]
    base = [Prop("deg1"), Prop("deg2"), Prop("deg3")]
    formulas = []
    for prop in base:
        formulas.append(Diamond(prop, index=index))
        formulas.append(Diamond(And(prop, Diamond(Not(prop), index=index)), index=index))
        if graded:
            formulas.append(GradedDiamond(prop, grade=2, index=index))
            formulas.append(GradedDiamond(Diamond(prop, index=index), grade=2, index=index))
    return formulas


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E12",
        title="Bisimilar worlds satisfy the same formulas",
        paper_reference="Section 4.2, Fact 1",
    )
    rng = random.Random(12)
    # The whole survey is one batch: generate every trial graph up front and
    # run the SB sanity algorithm over all of them in a single run_many sweep
    # (the execution half of Fact 1: an SB algorithm cannot distinguish
    # worlds that are bisimilar in the K-,- encoding -- Corollary 3's logic
    # side, checked against real executions).
    graphs = [
        random_bounded_degree_graph(10, 3, seed=rng.randint(0, 10_000)) for _ in range(3)
    ]
    sb_algorithm = SomeOddNeighbourAlgorithm()
    sb_results = run_many(sb_algorithm, graphs)
    for trial, graph in enumerate(graphs):
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)

        partition = bisimilarity_partition(encoding)
        relation = [
            (v, w)
            for v in encoding.worlds
            for w in encoding.worlds
            if partition[v] == partition[w]
        ]
        certificate_ok = is_bisimulation(encoding, encoding, relation)

        # All sample formulas are checked as one batch over the encoding,
        # sharing the compiled model and one subformula cache.
        invariant = True
        for truth in check_many(encoding, _sample_formulas(encoding.indices, graded=False)):
            for v, w in relation:
                if (v in truth) != (w in truth):
                    invariant = False
        result.add(
            f"trial {trial}: plain bisimilarity",
            "bisimilar => same ML formulas (Fact 1a); partition is a bisimulation",
            f"certificate={certificate_ok}, invariance={invariant}, "
            f"classes={len(set(partition.values()))}/{len(encoding.worlds)}",
            certificate_ok and invariant,
        )

        # Execution side of the same fact: an SB algorithm's output is a
        # function of the node's K-,- bisimilarity class.
        outputs = sb_results[trial].outputs
        execution_invariant = all(
            outputs[v] == outputs[w] for v, w in relation if v in outputs and w in outputs
        )
        result.add(
            f"trial {trial}: SB execution invariance",
            "bisimilar worlds get equal SB-algorithm outputs (Corollary 3)",
            f"invariant={execution_invariant}, algorithm={sb_algorithm.name}",
            execution_invariant,
        )

        graded_partition = bisimilarity_partition(encoding, graded=True)
        graded_relation = [
            (v, w)
            for v in encoding.worlds
            for w in encoding.worlds
            if graded_partition[v] == graded_partition[w]
        ]
        graded_certificate = is_graded_bisimulation(encoding, encoding, graded_relation)
        graded_invariant = True
        for truth in check_many(encoding, _sample_formulas(encoding.indices, graded=True)):
            for v, w in graded_relation:
                if (v in truth) != (w in truth):
                    graded_invariant = False
        result.add(
            f"trial {trial}: graded bisimilarity",
            "g-bisimilar => same GML formulas (Fact 1b)",
            f"certificate={graded_certificate}, invariance={graded_invariant}",
            graded_certificate and graded_invariant,
        )
    return result
