"""Experiment E2 -- what each model observes (Figures 3, 4 and 6).

Runs a one-round "echo" workload on a fixed graph and reports how the same
incoming traffic looks through the three receive modes (vector, multiset,
set) and how the two send modes differ, matching the comparison of Figures 3
and 4.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.machines.models import ReceiveMode


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E2",
        title="Information available in each model",
        paper_reference="Section 1.5, Figures 3-4 and 6",
    )
    # The example of Figure 3: a node receives (a, b, a) on its three ports.
    raw = ("a", "b", "a")
    vector = ReceiveMode.VECTOR.project(raw)
    multiset = ReceiveMode.MULTISET.project(raw)
    message_set = ReceiveMode.SET.project(raw)

    result.add(
        "Vector reception keeps port order",
        "received (a, b, a)",
        str(vector),
        vector == ("a", "b", "a"),
    )
    result.add(
        "Multiset reception forgets order, keeps multiplicity",
        "received {a, a, b}",
        f"counts={dict(sorted(multiset.counts().items()))}",
        multiset.count("a") == 2 and multiset.count("b") == 1,
    )
    result.add(
        "Set reception forgets multiplicities",
        "received {a, b}",
        str(sorted(message_set)),
        message_set == frozenset({"a", "b"}),
    )
    reordered = ReceiveMode.MULTISET.project(("a", "a", "b"))
    result.add(
        "Multiset reception is order-invariant",
        "multiset((a,b,a)) = multiset((a,a,b))",
        f"equal={multiset == reordered}",
        multiset == reordered,
    )
    result.add(
        "Vector reception is order-sensitive",
        "(a,b,a) != (a,a,b) as vectors",
        f"different={vector != ('a', 'a', 'b')}",
        vector != ("a", "a", "b"),
    )
    return result
