"""Experiment E7 -- leaf election separates VB from SV (Theorem 11, Corollary 12)."""

from __future__ import annotations

from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import path_graph, star_graph
from repro.problems.separating import LeafElectionInStars
from repro.problems.verification import solves, worst_case_running_time
from repro.separations.star import star_separation


def run(workers: int | None = None) -> ExperimentResult:
    """Replay the separation; the adversarial sweeps go through the compiled
    batch engine and can be fanned out over ``workers`` processes."""
    result = ExperimentResult(
        experiment_id="E7",
        title="Leaf election in stars: in SV(1), not in VB",
        paper_reference="Theorem 11, Corollary 12",
    )
    problem = LeafElectionInStars()
    solver = LeafElectionAlgorithm()
    graphs = [star_graph(2), star_graph(3), star_graph(4), path_graph(4)]
    in_sv = solves(solver, problem, graphs, workers=workers)
    runtime = worst_case_running_time(solver, graphs, workers=workers)
    result.add(
        "membership: Set algorithm solves the problem",
        "Pi in SV(1)",
        f"solved on all tested inputs={in_sv}, worst-case rounds={runtime}",
        in_sv and runtime <= 1,
    )
    for leaves in (2, 3, 5):
        evidence = star_separation(leaves)
        bisimilar = evidence.witness_bisimilar()
        must_distinguish = evidence.solutions_must_distinguish()
        result.add(
            f"impossibility on the {leaves}-star (Corollary 3b)",
            "all leaves bisimilar in K+,-; solutions must elect one leaf",
            f"bisimilar={bisimilar}, must distinguish={must_distinguish}",
            bisimilar and must_distinguish,
        )
    return result
