"""Experiment E6 -- the history simulations (Theorems 8-9, Remark 4).

Measures the two costs the paper discusses:

* round overhead: the simulations add at most one bookkeeping round
  (the theorems state "the same time T");
* message size: the simulated messages carry the full communication history,
  so their size grows linearly with the running time of the wrapped algorithm
  -- this is the open question of Section 5.4 ("is the large message overhead
  necessary?") made quantitative.
"""

from __future__ import annotations

from repro.core.simulations import (
    simulate_broadcast_with_multiset_broadcast,
    simulate_vector_with_multiset,
)
from repro.execution.engine import CompiledInstance, compiled_for, execute
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph
from repro.machines.algorithm import BroadcastAlgorithm, Output, VectorAlgorithm


class _VectorRoundCounter(VectorAlgorithm):
    """A Vector-model algorithm that runs for a fixed number of rounds."""

    def __init__(self, rounds: int) -> None:
        self._rounds = rounds

    def initial_state(self, degree: int) -> object:
        return 0 if self._rounds > 0 else Output(0)

    def send(self, state: object, port: int) -> object:
        return ("tick", port)

    def transition(self, state: object, received: tuple) -> object:
        elapsed = state + 1
        return Output(elapsed) if elapsed >= self._rounds else elapsed


class _BroadcastRoundCounter(BroadcastAlgorithm):
    """A Broadcast-model algorithm that runs for a fixed number of rounds."""

    def __init__(self, rounds: int) -> None:
        self._rounds = rounds

    def initial_state(self, degree: int) -> object:
        return 0 if self._rounds > 0 else Output(0)

    def broadcast(self, state: object) -> object:
        return "tick"

    def transition(self, state: object, received: tuple) -> object:
        elapsed = state + 1
        return Output(elapsed) if elapsed >= self._rounds else elapsed


def _measure(
    simulated_factory, inner_factory, rounds: int, compiled: CompiledInstance
) -> tuple[int, int]:
    # The whole T-sweep shares one compiled instance of the cycle: the
    # topology is compiled once and only the simulated algorithm varies.
    inner = inner_factory(rounds)
    simulation = simulated_factory(inner)
    result = execute(simulation, compiled, record_trace=True)
    return result.rounds, result.trace.max_message_size()


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E6",
        title="History simulations: Vector->Multiset and Broadcast->MB",
        paper_reference="Theorems 8-9, Corollary 10, Remark 4, Section 5.4",
    )
    compiled = compiled_for(cycle_graph(6))
    sizes_vector = []
    for rounds in (1, 2, 4, 8):
        total_rounds, message_size_measured = _measure(
            simulate_vector_with_multiset, _VectorRoundCounter, rounds, compiled
        )
        sizes_vector.append(message_size_measured)
        result.add(
            f"Theorem 8, T={rounds}: round overhead",
            "simulation runs in time T (here: <= T + 1)",
            f"rounds={total_rounds}",
            total_rounds <= rounds + 1,
        )
    growth_vector = sizes_vector[-1] / sizes_vector[0]
    result.add(
        "Theorem 8: message size grows with T",
        "messages carry the full history (linear growth)",
        f"max sizes for T=1,2,4,8: {sizes_vector} (x{growth_vector:.1f} from T=1 to T=8)",
        sizes_vector == sorted(sizes_vector) and growth_vector >= 4,
    )

    sizes_broadcast = []
    for rounds in (1, 2, 4, 8):
        total_rounds, message_size_measured = _measure(
            simulate_broadcast_with_multiset_broadcast, _BroadcastRoundCounter, rounds, compiled
        )
        sizes_broadcast.append(message_size_measured)
        result.add(
            f"Theorem 9, T={rounds}: round overhead",
            "simulation runs in time T (here: <= T + 1)",
            f"rounds={total_rounds}",
            total_rounds <= rounds + 1,
        )
    result.add(
        "Theorem 9: message size grows with T",
        "messages carry the full broadcast history",
        f"max sizes for T=1,2,4,8: {sizes_broadcast}",
        sizes_broadcast == sorted(sizes_broadcast),
    )
    return result
