"""Experiment E3 -- the full classification (Figure 5, results (1) and (2)).

Re-derives the linear order SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc mechanically:
the containment half from the checked simulation constructions of Theorems 4,
8 and 9, and the separation half from the three bisimulation witnesses of
Theorems 11, 13 and 17.
"""

from __future__ import annotations

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    GatherDegreesAlgorithm,
    PortEchoAlgorithm,
)
from repro.core.classification import ClassificationReport, ContainmentEvidence
from repro.core.hierarchy import LINEAR_ORDER, summary
from repro.core.simulations import (
    simulate_broadcast_with_multiset_broadcast,
    simulate_multiset_with_set,
    simulate_vector_with_multiset,
)
from repro.execution.engine import compiled_for, execute
from repro.execution.legacy import run_reference
from repro.machines.fastpath import fast_path
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.machines.models import ProblemClass
from repro.separations.witnesses import all_separations

_TEST_GRAPHS: tuple[Graph, ...] = (star_graph(3), path_graph(4), cycle_graph(4))


def _containment_evidences(
    workers: int | None = None, engine: str = "sweep"
) -> list[tuple[ContainmentEvidence, bool]]:
    """The three simulation constructions, checked on concrete inputs.

    The adversarial sweeps (simulation runs *and* the reference executions
    the validity predicates compare against) go through the selected engine
    -- superposed by default -- so benchmarks can time the sweep, compiled
    and seed runners on the identical workload.
    """
    if engine != "reference":
        # One memoizing fast-path wrapper per inner algorithm: the reference
        # executions the validity predicates need share projection and
        # transition caches across the whole adversarial sweep.
        def reference_runner(algorithm):
            fast = fast_path(algorithm, memoize_transitions=True)
            return lambda graph, numbering: execute(fast, compiled_for(graph, numbering))
    else:
        def reference_runner(algorithm):
            return lambda graph, numbering: run_reference(algorithm, graph, numbering)

    checked: list[tuple[ContainmentEvidence, bool]] = []

    # Theorem 4: MV ⊆ SV.  A Multiset algorithm's output is numbering-invariant
    # on the incoming side, so the simulation must reproduce it exactly.
    multiset_inner = GatherDegreesAlgorithm()
    evidence = ContainmentEvidence(
        smaller=ProblemClass.MV,
        larger=ProblemClass.SV,
        description="Theorem 4: Set simulation of a Multiset algorithm",
        simulate=lambda alg: simulate_multiset_with_set(alg, delta=3),
    )

    run_multiset_inner = reference_runner(multiset_inner)

    def multiset_outputs_valid(graph: Graph, numbering, outputs: dict) -> bool:
        reference = run_multiset_inner(graph, numbering).outputs
        return outputs == reference

    checked.append(
        (
            evidence,
            evidence.verify(
                [multiset_inner], _TEST_GRAPHS, multiset_outputs_valid,
                workers=workers, engine=engine,
            ),
        )
    )

    # Theorem 8: VV ⊆ MV.  The simulated output must coincide with the original
    # algorithm's output under *some* port numbering with the same output-port
    # assignment; for the echo workload that means every node reports the
    # multiset of output ports its neighbours use towards it.
    vector_inner = PortEchoAlgorithm()
    evidence8 = ContainmentEvidence(
        smaller=ProblemClass.VV,
        larger=ProblemClass.MV,
        description="Theorem 8: Multiset simulation of a Vector algorithm",
        simulate=simulate_vector_with_multiset,
    )

    def vector_outputs_valid(graph: Graph, numbering, outputs: dict) -> bool:
        for node in graph.nodes:
            expected = sorted(
                numbering.outgoing_port(neighbour, node) for neighbour in graph.neighbors(node)
            )
            if sorted(outputs[node]) != expected:
                return False
        return True

    checked.append(
        (
            evidence8,
            evidence8.verify(
                [vector_inner], _TEST_GRAPHS, vector_outputs_valid,
                workers=workers, engine=engine,
            ),
        )
    )

    # Theorem 9: VB ⊆ MB.  The minimum-degree workload is numbering-invariant.
    broadcast_inner = BroadcastMinimumDegreeAlgorithm()
    evidence9 = ContainmentEvidence(
        smaller=ProblemClass.VB,
        larger=ProblemClass.MB,
        description="Theorem 9: Multiset∩Broadcast simulation of a Broadcast algorithm",
        simulate=simulate_broadcast_with_multiset_broadcast,
    )

    run_broadcast_inner = reference_runner(broadcast_inner)

    def broadcast_outputs_valid(graph: Graph, numbering, outputs: dict) -> bool:
        reference = run_broadcast_inner(graph, numbering).outputs
        return outputs == reference

    checked.append(
        (
            evidence9,
            evidence9.verify(
                [broadcast_inner], _TEST_GRAPHS, broadcast_outputs_valid,
                workers=workers, engine=engine,
            ),
        )
    )
    return checked


def verify_containments(engine: str = "sweep", workers: int | None = None) -> bool:
    """Check the three simulation constructions (execution-bound workload).

    Exposed separately so benchmarks can time the adversarial execution
    sweeps under any engine without the (engine-independent) bisimulation
    work of the separation certificates.
    """
    return all(ok for _, ok in _containment_evidences(workers=workers, engine=engine))


def build_classification(
    workers: int | None = None, engine: str = "sweep"
) -> ClassificationReport:
    """Assemble and verify the full classification."""
    report = ClassificationReport()
    report.containments.extend(_containment_evidences(workers=workers, engine=engine))
    for evidence in all_separations():
        report.separations.append((evidence, evidence.verify(workers=workers, engine=engine)))
    return report


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E3",
        title="The linear order SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc",
        paper_reference="Figure 5, results (1)-(2), Section 5",
    )
    report = build_classification()
    for evidence, verified in report.containments:
        result.add(
            f"{evidence.smaller} ⊆ {evidence.larger} (simulation)",
            evidence.description,
            "verified on test graphs" if verified else "verification failed",
            verified,
        )
    for evidence, verified in report.separations:
        result.add(
            f"{evidence.larger} ⊄ {evidence.smaller} (bisimulation witness)",
            evidence.problem_name,
            "verified (Corollary 3)" if verified else "verification failed",
            verified,
        )
    order = summary()
    result.add(
        "number of distinct classes",
        "4",
        str(order.number_of_distinct_classes()),
        order.number_of_distinct_classes() == len(LINEAR_ORDER) == 4,
    )
    result.add(
        "linear order",
        "SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc",
        order.describe(),
        report.all_verified(),
    )
    return result
