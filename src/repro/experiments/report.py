"""Experiment results and report formatting.

Every experiment regenerates one artefact of the paper (a figure, a theorem or
a lemma) and reports *paper claim vs. measured outcome* rows.  The rows are
consumed by the benchmark harness and by ``examples/hierarchy_survey.py``, and
EXPERIMENTS.md is written from the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Row:
    """One paper-vs-measured comparison."""

    metric: str
    paper: str
    measured: str
    matches: bool

    def to_dict(self) -> dict:
        """Machine-readable form (consumed by ``--json`` and campaign CI)."""
        return {
            "metric": self.metric,
            "paper": self.paper,
            "measured": self.measured,
            "matches": self.matches,
        }


@dataclass
class ExperimentResult:
    """The outcome of one experiment."""

    experiment_id: str
    title: str
    paper_reference: str
    rows: list[Row] = field(default_factory=list)

    def add(self, metric: str, paper: str, measured: str, matches: bool) -> None:
        self.rows.append(Row(metric=metric, paper=paper, measured=measured, matches=matches))

    @property
    def all_match(self) -> bool:
        return all(row.matches for row in self.rows)

    def to_dict(self) -> dict:
        """Machine-readable form: the same records humans read as tables.

        Campaign aggregation and the CI artifacts consume this shape (one
        object per experiment, one entry per paper-vs-measured row).
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "all_match": self.all_match,
            "rows": [row.to_dict() for row in self.rows],
        }

    def format(self) -> str:
        """A plain-text table of the result."""
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"    paper artefact: {self.paper_reference}",
        ]
        width = max((len(row.metric) for row in self.rows), default=0)
        for row in self.rows:
            status = "ok" if row.matches else "MISMATCH"
            lines.append(
                f"    {row.metric.ljust(width)}  paper: {row.paper}  measured: {row.measured}  [{status}]"
            )
        return "\n".join(lines)


def format_report(results: list[ExperimentResult]) -> str:
    """A combined report for a collection of experiments."""
    sections = [result.format() for result in results]
    verdict = "ALL EXPERIMENTS MATCH" if all(r.all_match for r in results) else "MISMATCHES PRESENT"
    return "\n\n".join(sections) + f"\n\n== {verdict} =="
