"""Experiment E1 -- port numberings (Section 1.2, Figures 1 and 2).

Reconstructs the two example port numberings of Figures 1 and 2 on a small
graph and checks the structural facts the paper states about them: a port
numbering is a bijection on ports inducing the adjacency relation, the
Figure 2 numbering is an involution (consistent), and the canonical consistent
numbering of any graph is consistent.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.ports import (
    PortNumbering,
    consistent_port_numbering,
    count_port_numberings,
    random_port_numbering,
)


def _figure1_graph() -> Graph:
    """A 4-node graph of maximum degree 3, in the spirit of Figure 1."""
    return Graph(nodes=[1, 2, 3, 4], edges=[(1, 2), (1, 3), (1, 4), (3, 4)])


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E1",
        title="Port numberings and consistency",
        paper_reference="Section 1.2, Figures 1-2",
    )
    graph = _figure1_graph()

    general = random_port_numbering(graph, consistent=False)
    mapping = general.as_mapping()
    is_bijection = len(set(mapping.values())) == len(mapping)
    induced = {(u, v) for (u, _), (v, _) in mapping.items()}
    adjacency = {(u, v) for u, v in graph.edges} | {(v, u) for u, v in graph.edges}
    result.add(
        "p is a bijection on ports with A(p) = A(G)",
        "required by definition",
        f"bijection={is_bijection}, A(p)=A(G)={induced == adjacency}",
        is_bijection and induced == adjacency,
    )

    consistent = consistent_port_numbering(graph)
    result.add(
        "canonical numbering is an involution (Figure 2)",
        "consistent",
        f"is_consistent={consistent.is_consistent()}",
        consistent.is_consistent(),
    )

    star = star_graph(3)
    expected_star = 6 * 1 * 1 * 1  # centre has 3! orderings, leaves 1 each
    counted = count_port_numberings(star, consistent_only=True)
    result.add(
        "number of consistent port numberings of the 3-star",
        "prod_v deg(v)! = 6",
        str(counted),
        counted == expected_star,
    )

    cycle = cycle_graph(4)
    inconsistent_found = any(
        not random_port_numbering(cycle, consistent=False).is_consistent() for _ in range(20)
    )
    result.add(
        "general numberings need not be consistent",
        "input and output ports may disagree (Figure 1)",
        f"inconsistent example found={inconsistent_found}",
        inconsistent_found,
    )
    return result
