"""Experiment E9 -- symmetric port numberings of regular graphs (Lemma 15, Figure 8).

For a selection of regular graphs, builds the Lemma 15 port numbering from a
1-factorisation of the bipartite double cover and checks that all nodes become
bisimilar in the K+,+ encoding -- the key ingredient of the VV impossibility
half of Theorem 17.

The bisimilarity claim has an operational shadow, and this experiment checks
it by actually *running* algorithms: under the symmetric numbering every node
has the same local view at every depth, so any deterministic anonymous
algorithm must produce the same output on every node.  The executions sweep
through the superposed engine (:func:`repro.execution.sweep.run_sweep`) over
the symmetric numbering plus sampled adversarial numberings, and the sweep's
work accounting exhibits the same collapse the lemma talks about: under the
symmetric numbering all nodes share one configuration per round.
"""

from __future__ import annotations

import random

from repro.execution.sweep import SweepStats, run_sweep
from repro.experiments.report import ExperimentResult
from repro.graphs.covers import bipartite_double_cover, symmetric_port_numbering
from repro.graphs.generators import complete_graph, cycle_graph, figure9_graph, hypercube_graph
from repro.graphs.matching import one_factorisation
from repro.graphs.ports import random_port_numbering
from repro.logic.bisimulation import bisimilar_within
from repro.machines.library import reference_machine
from repro.machines.models import ProblemClass
from repro.machines.state_machine import algorithm_from_machine
from repro.modal.encoding import KripkeVariant, kripke_encoding

#: Sampled adversarial numberings swept alongside the symmetric one.
ADVERSARIAL_SAMPLES = 24


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E9",
        title="Every regular graph has a fully symmetric port numbering",
        paper_reference="Lemma 15, Figure 8",
    )
    graphs = {
        "cycle_5 (2-regular)": cycle_graph(5),
        "K_4 (3-regular)": complete_graph(4),
        "hypercube_3 (3-regular)": hypercube_graph(3),
        "figure9 (3-regular, matchless)": figure9_graph(),
    }
    for label, graph in graphs.items():
        double = bipartite_double_cover(graph)
        degree = graph.degree(graph.nodes[0])
        factors = one_factorisation(double)
        numbering = symmetric_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.FULL)
        all_bisimilar = bisimilar_within(encoding, graph.nodes)
        result.add(
            f"{label}: 1-factorisation of G* and symmetry",
            "k disjoint 1-factors; all nodes bisimilar in K+,+",
            f"factors={len(factors)} (k={degree}), all bisimilar={all_bisimilar}",
            len(factors) == degree and all_bisimilar,
        )
        # The operational check: a two-round VV machine, swept superposed
        # over the symmetric numbering plus sampled adversarial numberings.
        # Bisimilarity of all nodes forces a node-uniform output under the
        # symmetric numbering, and the sweep's configuration table collapses
        # accordingly (one distinct configuration per round there).
        algorithm = algorithm_from_machine(
            reference_machine(ProblemClass.VV, degree, rounds=2).as_state_machine()
        )
        rng = random.Random(9)
        numberings = [numbering] + [
            random_port_numbering(graph, rng=rng) for _ in range(ADVERSARIAL_SAMPLES)
        ]
        stats = SweepStats()
        results = run_sweep(
            algorithm, [(graph, p) for p in numberings], stats=stats
        )
        symmetric_outputs = set(results[0].outputs.values())
        # Lemma 15's collapse, in the sweep's own accounting: a cold sweep of
        # the symmetric instance alone visits exactly one distinct
        # configuration per round (all nodes share state and local view), so
        # its transition evaluations equal its round count.
        symmetric_stats = SweepStats()
        run_sweep(algorithm, [(graph, numbering)], stats=symmetric_stats)
        collapsed = symmetric_stats.evaluations == results[0].rounds
        result.add(
            f"{label}: executions under the symmetric numbering are uniform",
            "1 distinct output over all nodes; 1 distinct configuration per round",
            f"{len(symmetric_outputs)} distinct output(s); symmetric sweep "
            f"evaluated {symmetric_stats.evaluations} configs in "
            f"{results[0].rounds} rounds (full sweep: {stats.evaluations} "
            f"configs for {stats.occurrences} node-rounds)",
            len(symmetric_outputs) == 1 and collapsed,
        )
    # The paper notes the Lemma 15 numbering is in general inconsistent; on the
    # Figure 9 graph Lemma 16 says it *cannot* be consistent.
    numbering = symmetric_port_numbering(figure9_graph())
    result.add(
        "figure9: the symmetric numbering is inconsistent",
        "Lemma 16: odd-regular + no 1-factor => no consistent symmetric numbering",
        f"is_consistent={numbering.is_consistent()}",
        not numbering.is_consistent(),
    )
    return result
