"""Experiment E9 -- symmetric port numberings of regular graphs (Lemma 15, Figure 8).

For a selection of regular graphs, builds the Lemma 15 port numbering from a
1-factorisation of the bipartite double cover and checks that all nodes become
bisimilar in the K+,+ encoding -- the key ingredient of the VV impossibility
half of Theorem 17.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.graphs.covers import bipartite_double_cover, symmetric_port_numbering
from repro.graphs.generators import complete_graph, cycle_graph, figure9_graph, hypercube_graph
from repro.graphs.matching import one_factorisation
from repro.logic.bisimulation import bisimilar_within
from repro.modal.encoding import KripkeVariant, kripke_encoding


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E9",
        title="Every regular graph has a fully symmetric port numbering",
        paper_reference="Lemma 15, Figure 8",
    )
    graphs = {
        "cycle_5 (2-regular)": cycle_graph(5),
        "K_4 (3-regular)": complete_graph(4),
        "hypercube_3 (3-regular)": hypercube_graph(3),
        "figure9 (3-regular, matchless)": figure9_graph(),
    }
    for label, graph in graphs.items():
        double = bipartite_double_cover(graph)
        degree = graph.degree(graph.nodes[0])
        factors = one_factorisation(double)
        numbering = symmetric_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.FULL)
        all_bisimilar = bisimilar_within(encoding, graph.nodes)
        result.add(
            f"{label}: 1-factorisation of G* and symmetry",
            "k disjoint 1-factors; all nodes bisimilar in K+,+",
            f"factors={len(factors)} (k={degree}), all bisimilar={all_bisimilar}",
            len(factors) == degree and all_bisimilar,
        )
    # The paper notes the Lemma 15 numbering is in general inconsistent; on the
    # Figure 9 graph Lemma 16 says it *cannot* be consistent.
    numbering = symmetric_port_numbering(figure9_graph())
    result.add(
        "figure9: the symmetric numbering is inconsistent",
        "Lemma 16: odd-regular + no 1-factor => no consistent symmetric numbering",
        f"is_consistent={numbering.is_consistent()}",
        not numbering.is_consistent(),
    )
    return result
