"""Experiment E10 -- symmetry breaking separates VV from VVc (Theorem 17, Figure 9).

Checks the three ingredients of the separation on the Figure 9 graph: the
graph really is a connected 3-regular graph with no perfect matching
(Lemma 16's hypothesis), the local-type algorithm solves the symmetry-breaking
problem under consistent port numberings (membership in VVc(1)), and under the
Lemma 15 symmetric numbering all nodes are bisimilar in K+,+ (impossibility in
VV via Corollary 3a).
"""

from __future__ import annotations

from repro.algorithms.local_types import LocalTypeSymmetryBreaking
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph, figure9_graph, path_graph
from repro.graphs.matching import has_perfect_matching
from repro.problems.separating import SymmetryBreakingInMatchlessRegular, in_matchless_family
from repro.problems.verification import solves, worst_case_running_time
from repro.separations.matchless import matchless_separation


def run(workers: int | None = None) -> ExperimentResult:
    """Replay the separation; the adversarial sweeps go through the compiled
    batch engine and can be fanned out over ``workers`` processes."""
    result = ExperimentResult(
        experiment_id="E10",
        title="Symmetry breaking on matchless regular graphs: in VVc(1), not in VV",
        paper_reference="Theorem 17, Lemmas 15-16, Figure 9, Corollary 18",
    )
    graph = figure9_graph()
    result.add(
        "Figure 9 graph structure",
        "connected, 3-regular, no perfect matching",
        (
            f"connected={graph.is_connected()}, 3-regular={graph.is_regular(3)}, "
            f"perfect matching={has_perfect_matching(graph)}"
        ),
        graph.is_connected() and graph.is_regular(3) and not has_perfect_matching(graph),
    )
    result.add(
        "membership in the family G of Theorem 17",
        "G: connected, odd-regular, matchless",
        f"in_matchless_family={in_matchless_family(graph)}",
        in_matchless_family(graph),
    )
    problem = SymmetryBreakingInMatchlessRegular()
    solver = LocalTypeSymmetryBreaking()
    graphs = [graph, cycle_graph(4), path_graph(3)]
    in_vvc = solves(solver, problem, graphs, consistent_only=True, samples=10, workers=workers)
    runtime = worst_case_running_time(
        solver, graphs, consistent_only=True, samples=5, workers=workers
    )
    result.add(
        "membership: the local-type algorithm solves the problem assuming consistency",
        "Pi in VVc(1), two rounds",
        f"solved={in_vvc}, worst-case rounds={runtime}",
        in_vvc and runtime <= 2,
    )
    evidence = matchless_separation()
    result.add(
        "impossibility (Corollary 3a)",
        "under the Lemma 15 numbering, all nodes bisimilar in K+,+",
        f"bisimilar={evidence.witness_bisimilar()}, "
        f"constant outputs invalid={evidence.solutions_must_distinguish()}",
        evidence.witness_bisimilar() and evidence.solutions_must_distinguish(),
    )
    return result
