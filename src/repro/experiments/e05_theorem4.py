"""Experiment E5 -- the Multiset-to-Set simulation (Theorem 4, Lemmas 5-6).

Measures what the theorem promises:

* the simulating Set algorithm reproduces the Multiset algorithm's output
  exactly on every tested graph and port numbering;
* the round overhead is bounded by ``2 * Delta`` (plus the one bookkeeping
  round of this implementation);
* after ``2 * Delta`` symmetry-breaking rounds no node has a pair of
  indistinguishable neighbours (Lemma 6), i.e. the phase-2 tags are distinct.

All executions stream through the batch engine
(:func:`repro.execution.engine.run_iter`): one batch per algorithm per
graph, sharing the fast-path caches across the numbering sweep.  A final
row runs the whole simulation workload again on the seed reference runner
and cross-checks the compiled engine's outputs against it.
"""

from __future__ import annotations

import random

from repro.algorithms.basic import GatherDegreesAlgorithm
from repro.core.simulations import simulate_multiset_with_set
from repro.execution.engine import run_iter
from repro.execution.runner import run as run_algorithm
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph, figure9_graph, path_graph, star_graph
from repro.graphs.ports import random_port_numbering


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="Simulating Multiset algorithms with Set algorithms",
        paper_reference="Theorem 4, Lemmas 5-6, Corollary 7",
    )
    rng = random.Random(5)
    inner = GatherDegreesAlgorithm()
    inner_time = 1
    graphs = {
        "star_3 (Delta=3)": star_graph(3),
        "path_5 (Delta=2)": path_graph(5),
        "cycle_6 (Delta=2)": cycle_graph(6),
        "figure9 (Delta=3)": figure9_graph(),
    }
    engines_agree = True
    cross_checked = 0
    for label, graph in graphs.items():
        delta = graph.max_degree()
        simulation = simulate_multiset_with_set(inner, delta)
        instances = [(graph, random_port_numbering(graph, rng)) for _ in range(3)]
        references = run_iter(inner, instances, memoize_transitions=True)
        simulated_results = list(
            run_iter(simulation, instances, record_trace=True, memoize_transitions=True)
        )
        exact = True
        worst_rounds = 0
        worst_message = 0
        for reference, simulated in zip(references, simulated_results):
            exact = exact and simulated.outputs == reference.outputs
            worst_rounds = max(worst_rounds, simulated.rounds)
            worst_message = max(worst_message, simulated.trace.max_message_size())
        bound = inner_time + 2 * delta + 1
        result.add(
            f"{label}: output preserved, rounds <= T + 2*Delta + 1",
            f"T + O(Delta) = {bound}",
            f"exact={exact}, rounds={worst_rounds}, max message size={worst_message}",
            exact and worst_rounds <= bound,
        )
        # Differential oracle: the seed reference runner must reproduce the
        # compiled engine's simulation outputs on the same instances.
        for simulated, seed_result in zip(
            simulated_results, run_iter(simulation, instances, engine="reference")
        ):
            cross_checked += 1
            engines_agree = engines_agree and simulated.outputs == seed_result.outputs

    result.add(
        "compiled engine == seed runner on the simulation workload",
        "identical outputs on every (graph, numbering) instance",
        f"agree={engines_agree} over {cross_checked} instances",
        engines_agree,
    )

    # Lemma 6 on the Figure 9 graph: after 2*Delta rounds the phase-2 tags
    # (beta, degree, outgoing port) are pairwise distinct across any node's
    # neighbours -- checked implicitly by output exactness above, and
    # explicitly here via the simulation's internal traces.
    graph = figure9_graph()
    delta = graph.max_degree()
    simulation = simulate_multiset_with_set(inner, delta)
    numbering = random_port_numbering(graph, rng)
    trace = run_algorithm(simulation, graph, numbering, record_trace=True).trace
    tag_round = 2 * delta + 1
    distinct_everywhere = True
    for node in graph.nodes:
        received = trace.messages_received_by(node, tag_round)
        tags = [message[:4] for message in received.values() if isinstance(message, tuple)]
        distinct_everywhere = distinct_everywhere and len(tags) == len(set(tags))
    result.add(
        "Lemma 6: no pair of indistinguishable neighbours after 2*Delta rounds",
        "phase-2 tags are pairwise distinct at every node",
        f"distinct at all {graph.number_of_nodes} nodes: {distinct_everywhere}",
        distinct_everywhere,
    )
    return result
