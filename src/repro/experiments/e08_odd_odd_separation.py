"""Experiment E8 -- odd-odd-neighbours separates SB from MB (Theorem 13, Corollary 14)."""

from __future__ import annotations

from repro.algorithms.parity import OddOddNeighboursAlgorithm
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import cycle_graph, odd_odd_gadget_pair, path_graph, star_graph
from repro.logic.bisimulation import bisimilar_within
from repro.modal.encoding import KripkeVariant, kripke_encoding
from repro.problems.separating import OddOddNeighbours
from repro.problems.verification import solves, worst_case_running_time
from repro.separations.odd_odd import odd_odd_separation


def run(workers: int | None = None) -> ExperimentResult:
    """Replay the separation; the adversarial sweeps go through the compiled
    batch engine and can be fanned out over ``workers`` processes."""
    result = ExperimentResult(
        experiment_id="E8",
        title="Odd number of odd-degree neighbours: in MB(1), not in SB",
        paper_reference="Theorem 13, Corollary 14",
    )
    problem = OddOddNeighbours()
    solver = OddOddNeighboursAlgorithm()
    graphs = [path_graph(4), star_graph(3), cycle_graph(5), odd_odd_gadget_pair()[0]]
    in_mb = solves(solver, problem, graphs, workers=workers)
    runtime = worst_case_running_time(solver, graphs, workers=workers)
    result.add(
        "membership: counting broadcast algorithm solves the problem",
        "Pi in MB(1)",
        f"solved on all tested inputs={in_mb}, worst-case rounds={runtime}",
        in_mb and runtime <= 1,
    )
    evidence = odd_odd_separation()
    graph, first, second = odd_odd_gadget_pair()
    expected_first = problem.expected_output(graph, first)
    expected_second = problem.expected_output(graph, second)
    result.add(
        "the witness nodes need different outputs",
        "one white node answers 1, the other 0",
        f"outputs must be {expected_first} and {expected_second}",
        expected_first != expected_second,
    )
    result.add(
        "impossibility (Corollary 3c)",
        "the white nodes are bisimilar in K-,-",
        f"bisimilar={evidence.witness_bisimilar()}",
        evidence.witness_bisimilar(),
    )
    # Counting *does* separate them: graded bisimilarity distinguishes the two
    # witnesses, which is exactly why the problem is solvable in MB(1).
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    graded_separates = not bisimilar_within(encoding, (first, second), graded=True)
    result.add(
        "graded bisimulation distinguishes the witnesses",
        "GML can count successors (Section 4.1)",
        f"distinguished={graded_separates}",
        graded_separates,
    )
    return result
