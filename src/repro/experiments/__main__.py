"""Command-line entry point: regenerate the experiment report.

Usage::

    python -m repro.experiments            # run all experiments (E1-E12)
    python -m repro.experiments E3 E10     # run selected experiments
"""

from __future__ import annotations

import sys

from repro.experiments.registry import run_all_experiments, run_experiment
from repro.experiments.report import format_report


def main(argv: list[str]) -> int:
    if argv:
        results = [run_experiment(experiment_id) for experiment_id in argv]
    else:
        results = run_all_experiments()
    print(format_report(results))
    return 0 if all(result.all_match for result in results) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
