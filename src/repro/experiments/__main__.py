"""Command-line entry point: regenerate the experiment report.

Usage::

    python -m repro.experiments            # run all experiments (E1-E12)
    python -m repro.experiments E3 E10     # run selected experiments
    python -m repro.experiments --list     # enumerate registered experiment ids
    python -m repro.experiments --json E3  # machine-readable records
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.registry import EXPERIMENTS, run_all_experiments, run_experiment
from repro.experiments.report import format_report


def _list_experiments() -> str:
    lines = []
    for experiment_id, runner in EXPERIMENTS.items():
        module = sys.modules[runner.__module__]
        summary = next(iter((module.__doc__ or "").strip().splitlines()), "")
        lines.append(f"{experiment_id:4} {summary}")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper-vs-measured experiment report.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--list", action="store_true", help="list registered experiment ids and exit"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON records"
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0

    if args.ids:
        # Validate up front: a KeyError from *inside* an experiment is a real
        # bug and must surface as a traceback, not as "unknown experiment".
        unknown = [experiment_id for experiment_id in args.ids if experiment_id not in EXPERIMENTS]
        if unknown:
            known = ", ".join(EXPERIMENTS)
            raise SystemExit(
                f"error: unknown experiment {unknown[0]!r}; known ids: {known} "
                f"(use --list to enumerate them)"
            )
        results = [run_experiment(experiment_id) for experiment_id in args.ids]
    else:
        results = run_all_experiments()

    if args.json:
        print(json.dumps([result.to_dict() for result in results], indent=2))
    else:
        print(format_report(results))
    return 0 if all(result.all_match for result in results) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
