"""Execution traces and message accounting.

The open question at the end of the paper (Section 5.4) is whether the large
*message-size* overhead of the simulation constructions (Theorems 4, 8, 9) is
necessary.  To be able to measure that overhead, the runner can record a
:class:`Trace`: the full state history, the messages received by every port in
every round, and a size estimate for each message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.graph import Node


def message_size(message: Any) -> int:
    """A structural size estimate of a message: the number of atoms it contains.

    Containers (tuples, lists, sets, frozensets, dicts and
    :class:`~repro.machines.multiset.FrozenMultiset`) contribute the sizes of
    their elements plus one; everything else counts as a single atom.  The
    estimate is used to compare message growth between an algorithm and its
    simulation, not as an exact bit count.
    """
    from repro.machines.multiset import FrozenMultiset

    if isinstance(message, (tuple, list, set, frozenset)):
        return 1 + sum(message_size(item) for item in message)
    if isinstance(message, FrozenMultiset):
        return 1 + sum(message_size(item) * count for item, count in message.counts().items())
    if isinstance(message, dict):
        return 1 + sum(message_size(key) + message_size(value) for key, value in message.items())
    return 1


@dataclass
class Trace:
    """A complete record of one execution.

    Attributes
    ----------
    state_history:
        ``state_history[t][v]`` is the state of node ``v`` at time ``t``
        (``t = 0`` is the initial state).
    received_messages:
        ``received_messages[t][(v, i)]`` is the message received by node ``v``
        through input port ``i`` in round ``t`` (rounds are 1-based; index 0 is
        an empty dict for alignment with ``state_history``).
    """

    state_history: list[dict[Node, Any]] = field(default_factory=list)
    received_messages: list[dict[tuple[Node, int], Any]] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        """The number of communication rounds recorded."""
        return max(0, len(self.state_history) - 1)

    def states_at(self, time: int) -> dict[Node, Any]:
        """The state vector ``x_t``."""
        return self.state_history[time]

    def max_message_size(self) -> int:
        """The largest message (structural size) observed in the execution."""
        sizes = [
            message_size(message)
            for per_round in self.received_messages
            for message in per_round.values()
        ]
        return max(sizes, default=0)

    def total_message_volume(self) -> int:
        """The sum of all message sizes over the whole execution."""
        return sum(
            message_size(message)
            for per_round in self.received_messages
            for message in per_round.values()
        )

    def messages_received_by(self, node: Node, time: int) -> dict[int, Any]:
        """The messages received by ``node`` in round ``time``, keyed by input port."""
        return {
            port: message
            for (receiver, port), message in self.received_messages[time].items()
            if receiver == node
        }
