"""NumPy vector kernel: the superposed sweep as array scatter/gather.

The superposed sweep engine (:mod:`repro.execution.sweep`) already reduced a
whole adversarial sweep to dense integer ids -- interned states and messages,
a global ``(state, inbox) -> successor`` configuration table -- but its round
loop still walks every ``(instance, node)`` pair in Python: one dict lookup
per node-round, even when the lookup is a guaranteed hit.  On an E3/E9-shaped
sweep (thousands of numberings of one small witness graph) that is tens of
thousands of Python dict operations per round for a handful of *distinct*
configurations.

This module runs the same id-space superposition as array code over int64
lanes, one batched pass per round over **all** live instances of a topology
group at once:

* the send phase is one fancy-index table lookup
  ``OUT = SEND[state[:, port_owner], port_q]`` -- the lazily-filled
  ``SEND[sid, q]`` table plays the role of the sweep engine's rebuild rows
  (stopped states carry ``m0`` rows, so halted nodes park ``m0``
  implicitly);
* the gather phase is one ``np.take_along_axis`` over the per-instance
  source maps (the compiled delivery maps of
  :class:`~repro.execution.engine.CompiledInstance`, stacked into one
  ``(instances, ports)`` matrix);
* receive-mode canonicalization is array-wide: inboxes land in a padded
  ``(instances, nodes, max_degree)`` block (sentinel-padded), Multiset sorts
  along the port axis, Set sorts, masks duplicates to the sentinel and
  re-sorts;
* the transition phase runs ``np.unique`` over the active configuration
  rows and consults the Python-side configuration table **once per distinct
  row in the batch** -- the algorithm's own ``transition`` runs only for
  rows never seen before, exactly as in the sweep engine.

States and messages are interned into the *same* :class:`SweepTables` the
sweep engine uses (shared via the
:class:`~repro.machines.fastpath.FastPathAlgorithm` wrapper), so results are
node-for-node identical and warm tables amortize across both engines; the
NumPy-side mirrors (stop flags, send tables, per-width configuration caches)
live in :class:`VectorTables` on the wrapper's ``vector_tables`` slot.

Instance-level collapse (delivery signatures) is shared with the sweep
engine through :func:`repro.execution.sweep.delivery_signature_of`.

NumPy is an optional dependency: the module imports without it, and
:func:`run_vector` raises
:class:`~repro.engines.registry.EngineUnavailableError` (a ``ValueError``
*and* an ``ImportError``) with an install hint when it is missing.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.graphs.graph import Node
from repro.machines.algorithm import Algorithm, Output
from repro.machines.fastpath import FastPathAlgorithm, fast_path
from repro.machines.models import ReceiveMode, SendMode
from repro.execution.engine import (
    DEFAULT_MAX_ROUNDS,
    CompiledInstance,
    ExecutionError,
    ExecutionResult,
    Instance,
    compile_instance,
)
from repro.execution.sweep import (
    SweepStats,
    SweepTables,
    collapse_instances,
    delivery_signature_of,
    publish_stats,
    stats_values,
    sweep_tables_for,
)
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span, tracing_enabled as _tracing

__all__ = ["VectorTables", "run_vector", "vector_tables_for"]

_MISSING = object()

#: Inbox padding value: sorts after every real message id and is never one.
_SENTINEL = 1 << 62

#: Ceiling for the scalar base-packed row keys (int64 with safety margin).
_PACK_LIMIT = 1 << 62


class VectorTables:
    """NumPy-side mirrors of the shared :class:`SweepTables` id space.

    The authoritative interning (state/message values and ids, stop flags,
    outputs) stays in the sweep tables; this class keeps the flat array
    views the kernel indexes per round:

    * ``stops`` -- per-sid stop flags as a bool array (grown in sync with
      the interned states);
    * ``send_table`` -- ``send_table[sid, q]`` is the interned id of
      ``mu(state, q + 1)``, filled lazily up to the largest degree the sid
      has actually been observed at (``send_fill``), so a send rule that
      indexes per-port state data is never consulted beyond its own shape;
      stopped sids carry ``m0`` rows;
    * ``bcast_table`` -- the broadcast analogue (one id per sid, ``-1``
      means unfilled);
    * ``configs`` -- per-row-width ``bytes -> (new_sid, stopped)`` tables:
      the vector twin of ``SweepTables.configs``, keyed by the raw bytes of
      a canonicalized ``(state_id, padded inbox)`` row.
    """

    __slots__ = (
        "stops",
        "stop_count",
        "send_table",
        "send_fill",
        "send_fill_np",
        "bcast_table",
        "configs",
    )

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.stops: Any = None
        self.stop_count: int = 0
        self.send_table: Any = None
        self.send_fill: dict[int, int] = {}
        self.send_fill_np: Any = None
        self.bcast_table: Any = None
        self.configs: dict[int, dict[bytes, tuple[int, bool]]] = {}

    @property
    def config_count(self) -> int:
        """Distinct configurations interned across every row width."""
        return sum(map(len, self.configs.values()))

    def sync_stops(self, np: Any, state_stops: list[bool]) -> Any:
        """Grow the stop-flag array to cover every interned sid."""
        total = len(state_stops)
        stops = self.stops
        if stops is None or len(stops) < total:
            capacity = max(64, 2 * total)
            grown = np.zeros(capacity, dtype=bool)
            if stops is not None:
                grown[: self.stop_count] = stops[: self.stop_count]
            self.stops = stops = grown
        if self.stop_count < total:
            stops[self.stop_count : total] = state_stops[self.stop_count : total]
            self.stop_count = total
        return stops

    def ensure_send(self, np: Any, sids: int, width: int) -> Any:
        """Grow the port-addressed send table to ``(>= sids, >= width)``."""
        table = self.send_table
        if table is None or table.shape[0] < sids or table.shape[1] < width:
            rows = max(64, 2 * sids, table.shape[0] if table is not None else 0)
            cols = max(width, table.shape[1] if table is not None else 0)
            grown = np.full((rows, cols), -1, dtype=np.int64)
            if table is not None:
                grown[: table.shape[0], : table.shape[1]] = table
            self.send_table = table = grown
        fill = self.send_fill_np
        if fill is None or len(fill) < table.shape[0]:
            grown_fill = np.zeros(table.shape[0], dtype=np.int64)
            if fill is not None:
                grown_fill[: len(fill)] = fill
            self.send_fill_np = fill = grown_fill
        return table

    def ensure_bcast(self, np: Any, sids: int) -> Any:
        """Grow the broadcast send table to cover ``sids`` states."""
        table = self.bcast_table
        if table is None or len(table) < sids:
            capacity = max(64, 2 * sids)
            grown = np.full(capacity, -1, dtype=np.int64)
            if table is not None:
                grown[: len(table)] = table
            self.bcast_table = table = grown
        return table


def vector_tables_for(fast: FastPathAlgorithm) -> VectorTables:
    """The vector tables of a fast-path wrapper, created on first use."""
    tables = fast.vector_tables
    if tables is None:
        tables = VectorTables()
        fast.vector_tables = tables
    return tables


def run_vector(
    algorithm: Algorithm | FastPathAlgorithm,
    instances: Iterable[Instance],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    require_halt: bool = True,
    inputs: Sequence[dict[Node, Any] | None] | None = None,
    workers: int | None = None,
    stats: SweepStats | None = None,
    arena: bool | None = None,
) -> list[ExecutionResult]:
    """Run one algorithm over a sweep of instances through the NumPy kernel.

    The contract is exactly :func:`repro.execution.sweep.run_sweep`'s:
    results in input order, node-for-node identical to the sweep, compiled
    and reference engines (the differential suite in
    ``tests/test_vector_engine.py`` checks all seven model classes), the
    same post-sweep ``require_halt`` behaviour and the same
    :class:`SweepStats` accounting.  ``workers`` is accepted for signature
    parity and ignored: the kernel is batch-level array code and always
    runs in-process.

    ``arena`` selects the whole-batch mega-arena: every topology group --
    across graph families and sizes -- is padded into one multi-topology
    block and driven through a single round loop, so a mixed campaign shard
    costs one kernel invocation instead of one per topology.  ``None`` (the
    default) auto-enables the arena exactly when the batch spans more than
    one topology; ``False`` forces the per-topology loop.  Results are
    node-for-node identical either way (padded lanes are masked out of the
    round loop and never reach the configuration table).

    Raises :class:`~repro.engines.registry.EngineUnavailableError` when
    NumPy is not installed.
    """
    from repro.engines.registry import numpy_or_none, resolve_engine

    resolve_engine("vector", requires={"sweep"}, operation="run_vector")
    np = numpy_or_none()

    compiled = [compile_instance(item) for item in instances]
    if inputs is None:
        per_inputs: list[dict[Node, Any] | None] = [None] * len(compiled)
    else:
        per_inputs = list(inputs)
        if len(per_inputs) != len(compiled):
            raise ValueError(
                f"inputs has {len(per_inputs)} entries for {len(compiled)} instances"
            )

    fast = fast_path(algorithm)
    tables = sweep_tables_for(fast)
    vtables = vector_tables_for(fast)
    observing = _metrics.enabled() or _tracing()
    if observing:
        _metrics.gauge("engines.numpy_available").set(1)
        if stats is None:
            stats = SweepStats()
    before = stats_values(stats) if stats is not None else None
    states_before = len(tables.state_values)
    messages_before = len(tables.msg_values)
    results: list[ExecutionResult | None] = [None] * len(compiled)

    groups: dict[int, list[int]] = {}
    for index, instance in enumerate(compiled):
        groups.setdefault(id(instance.topology), []).append(index)
    use_arena = (len(groups) > 1) if arena is None else (arena and bool(compiled))
    with _span("engine.vector.run", engine="vector") as sp:
        if use_arena:
            _vector_arena(
                np,
                fast,
                tables,
                vtables,
                compiled,
                max_rounds,
                per_inputs,
                results,
                stats,
            )
        else:
            for indices in groups.values():
                _vector_group(
                    np,
                    fast,
                    tables,
                    vtables,
                    [compiled[i] for i in indices],
                    indices,
                    max_rounds,
                    [per_inputs[i] for i in indices],
                    results,
                    stats,
                )
        if stats is not None:
            stats.instances += len(compiled)
            stats.distinct_states += len(tables.state_values) - states_before
            stats.distinct_messages += len(tables.msg_values) - messages_before
            if observing:
                publish_stats("vector", stats, before, sp)
    if require_halt:
        for index, result in enumerate(results):
            if result is not None and not result.halted:
                raise ExecutionError(
                    f"{fast.inner.name} did not halt on {compiled[index].graph!r} "
                    f"within {max_rounds} rounds"
                )
    return results  # type: ignore[return-value]


def _vector_group(
    np: Any,
    fast: FastPathAlgorithm,
    tables: SweepTables,
    vtables: VectorTables,
    group: list[CompiledInstance],
    indices: list[int],
    max_rounds: int,
    group_inputs: list[dict[Node, Any] | None],
    results: list[ExecutionResult | None],
    stats: SweepStats | None,
) -> None:
    """Execute one shared-topology group as batched array rounds."""
    inner = fast.inner
    topology = group[0].topology
    nodes = topology.nodes
    n = len(nodes)
    degrees = topology.degrees
    num_ports = topology.num_ports
    maxd = max(degrees, default=0)
    width = 1 + maxd
    broadcast = inner.model.send is SendMode.BROADCAST
    receive = inner.model.receive
    vector_mode = receive is ReceiveMode.VECTOR
    set_mode = receive is ReceiveMode.SET
    project = receive.project
    transition = inner.transition
    send = inner.send
    broadcast_rule = inner.broadcast
    cls = type(inner)
    default_protocol = (
        cls.is_stopping is Algorithm.is_stopping and cls.output is Algorithm.output
    )
    is_stopping = inner.is_stopping

    state_ids = tables.state_ids
    state_values = tables.state_values
    state_stops = tables.state_stops
    state_outputs = tables.state_outputs
    msg_ids = tables.msg_ids
    msg_values = tables.msg_values

    def intern_state(state: Any) -> int:
        sid = state_ids.get(state)
        if sid is None:
            sid = state_ids[state] = len(state_values)
            state_values.append(state)
            if default_protocol:
                state_stops.append(isinstance(state, Output))
            else:
                state_stops.append(is_stopping(state))
            state_outputs.append(_MISSING)
        return sid

    def intern_msg(message: Any) -> int:
        mid = msg_ids.get(message)
        if mid is None:
            mid = msg_ids[message] = len(msg_values)
            msg_values.append(message)
        return mid

    def output_of(sid: int) -> Any:
        value = state_outputs[sid]
        if value is _MISSING:
            state = state_values[sid]
            value = state.value if default_protocol else inner.output(state)
            state_outputs[sid] = value
        return value

    signature_of = delivery_signature_of(
        inner.model, any(item is not None for item in group_inputs)
    )
    executed, duplicates = collapse_instances(group, signature_of)
    reps = len(executed)

    # The shared initial configuration (inputs may specialize it per row).
    initial_rows = tables.initial_rows
    init_row = [0] * n
    for i in range(n):
        sid = initial_rows.get(degrees[i])
        if sid is None:
            sid = initial_rows[degrees[i]] = intern_state(inner.initial_state(degrees[i]))
        init_row[i] = sid

    state = np.empty((reps, n), dtype=np.int64)
    for row, position in enumerate(executed):
        item_inputs = group_inputs[position]
        if item_inputs is None:
            state[row] = init_row
        else:
            state[row] = [
                intern_state(
                    inner.initial_state_with_input(degrees[i], item_inputs.get(nodes[i]))
                )
                for i in range(n)
            ]

    # Stacked delivery maps: one (reps, ports) gather matrix for the group.
    if broadcast:
        src = np.empty((reps, num_ports), dtype=np.int64)
        for row, position in enumerate(executed):
            src[row] = [s for senders in group[position].source_nodes for s in senders]
    else:
        src = np.empty((reps, num_ports), dtype=np.int64)
        for row, position in enumerate(executed):
            src[row] = [s for slots in group[position].sources for s in slots]
    deg_np = np.asarray(degrees, dtype=np.int64)
    port_owner = np.repeat(np.arange(n, dtype=np.int64), deg_np)
    port_q = (
        np.concatenate([np.arange(d, dtype=np.int64) for d in degrees])
        if num_ports
        else np.empty(0, dtype=np.int64)
    )

    config_table = vtables.configs.setdefault(width, {})

    def fill_send_rows(st: Any) -> None:
        """Fill the lazy send tables for every (sid, shape) pair in ``st``.

        Warm rounds reduce to one vectorized "anything unfilled?" check: the
        per-pair discovery (a full np.unique over the state matrix) only
        runs when some sid actually needs a wider row than it has.
        """
        if broadcast:
            table = vtables.ensure_bcast(np, len(state_values))
            missing = table[st] < 0
            if not missing.any():
                return
            for sid in np.unique(st[missing]):
                sid = int(sid)
                if table[sid] < 0:
                    table[sid] = (
                        0 if state_stops[sid] else intern_msg(broadcast_rule(state_values[sid]))
                    )
            return
        if maxd == 0:
            return
        table = vtables.ensure_send(np, len(state_values), maxd)
        fill_np = vtables.send_fill_np
        deg_mat = np.broadcast_to(deg_np, st.shape)
        need = fill_np[st] < deg_mat
        if not need.any():
            return
        send_fill = vtables.send_fill
        for key in np.unique(st[need] * (maxd + 1) + deg_mat[need]):
            sid, degree = divmod(int(key), maxd + 1)
            filled = send_fill.get(sid, 0)
            if filled >= degree:
                continue
            if state_stops[sid]:
                table[sid, filled:degree] = 0
            else:
                value = state_values[sid]
                table[sid, filled:degree] = [
                    intern_msg(send(value, q + 1)) for q in range(filled, degree)
                ]
            send_fill[sid] = degree
            fill_np[sid] = degree

    def evaluate(row: Any) -> tuple[int, bool]:
        """Consult the algorithm for a configuration row never seen before."""
        sid = int(row[0])
        inbox = row[1:]
        real = inbox[inbox != _SENTINEL]
        vector = tuple(msg_values[int(mid)] for mid in real)
        new_state = transition(
            state_values[sid], vector if vector_mode else project(vector)
        )
        nsid = intern_state(new_state)
        return (nsid, state_stops[nsid])

    rounds = np.zeros(reps, dtype=np.int64)
    halted = np.zeros(reps, dtype=bool)
    walk = np.zeros(reps, dtype=np.int64)
    evaluations = 0
    occurrences = 0
    fastpath_rounds = 0
    sortpath_rounds = 0

    # Per-call transition map over scalar base-packed row keys: sorted keys
    # with their new sids, applied by one np.searchsorted per round.  Valid
    # only while the packing base is stable (growing message tables change
    # the encoding), so rounds that intern anything fall back to the full
    # unique-and-evaluate pass and rebuild the map.
    pack_base = -1
    pack_keys: Any = None
    pack_sids: Any = None

    stops_np = vtables.sync_stops(np, state_stops)
    if n == 0:
        halted[:] = True
        live = np.empty(0, dtype=np.int64)
    else:
        done = stops_np[state].all(axis=1)
        halted[done] = True
        live = np.nonzero(~done)[0]

    current_round = 0
    while live.size and current_round < max_rounds:
        current_round += 1
        st = state[live]  # (L, n) copy, written back after the transition
        alive = ~stops_np[st]  # pre-transition active-node mask

        # Send phase: rebuild the whole output buffer from the state rows
        # (stopped sids carry m0 entries, so halted nodes park m0).
        fill_send_rows(st)
        if broadcast:
            out = vtables.bcast_table[st]  # (L, n)
        else:
            out = (
                vtables.send_table[st[:, port_owner], port_q]
                if num_ports
                else np.empty((len(live), 0), dtype=np.int64)
            )

        # Gather + canonicalize: pad into (L, n, maxd), then sort per mode.
        recv = np.take_along_axis(out, src[live], axis=1)
        inbox = np.full((len(live), n, maxd), _SENTINEL, dtype=np.int64)
        if num_ports:
            inbox[:, port_owner, port_q] = recv
        if not vector_mode and maxd > 1:
            inbox.sort(axis=2)
            if set_mode:
                dup = inbox[:, :, 1:] == inbox[:, :, :-1]
                if dup.any():
                    inbox[:, :, 1:][dup] = _SENTINEL
                    inbox.sort(axis=2)

        # Transition phase: one np.unique over the active configuration
        # rows, one dict lookup per *distinct* row, one transition call per
        # row the whole id space has never seen.  The rows are deduplicated
        # through scalar base-packed keys when the id spaces fit in int64
        # (a 1-D sort, ~20x cheaper than np.unique's row-wise argsort); the
        # packing base depends on the current table sizes, so the keys are
        # round-local -- the persistent config table stays keyed by the
        # canonical row bytes.
        cfg = np.concatenate([st[:, :, None], inbox], axis=2)
        rows = cfg[alive]
        if rows.size:
            base = len(msg_values) + 1
            packable = (len(state_values) + 1) * base ** maxd < _PACK_LIMIT
            packed = None
            handled = False
            if packable:
                packed = rows[:, 0].copy()
                for col in range(1, maxd + 1):
                    slot = rows[:, col]
                    packed *= base
                    packed += np.where(slot == _SENTINEL, base - 1, slot)
                if base == pack_base and pack_keys is not None and pack_keys.size:
                    pos = np.searchsorted(pack_keys, packed)
                    np.minimum(pos, len(pack_keys) - 1, out=pos)
                    if (pack_keys[pos] == packed).all():
                        st[alive] = pack_sids[pos]
                        handled = True
            if not handled:
                if packable:
                    uniq_keys, first, inverse = np.unique(
                        packed, return_index=True, return_inverse=True
                    )
                    uniq = rows[first]
                else:
                    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
                inverse = inverse.reshape(-1)
                new_sids = np.empty(len(uniq), dtype=np.int64)
                table_get = config_table.get
                for u in range(len(uniq)):
                    row = uniq[u]
                    key = row.tobytes()
                    entry = table_get(key)
                    if entry is None:
                        evaluations += 1
                        entry = config_table[key] = evaluate(row)
                    new_sids[u] = entry[0]
                st[alive] = new_sids[inverse]
                if packable:
                    if base == pack_base and pack_keys is not None and pack_keys.size:
                        merged = np.union1d(pack_keys, uniq_keys)
                        merged_sids = np.empty(len(merged), dtype=np.int64)
                        merged_sids[np.searchsorted(merged, pack_keys)] = pack_sids
                        merged_sids[np.searchsorted(merged, uniq_keys)] = new_sids
                        pack_keys, pack_sids = merged, merged_sids
                    else:
                        pack_base = base
                        pack_keys, pack_sids = uniq_keys, new_sids
                else:
                    pack_base = -1
                    pack_keys = pack_sids = None
            if handled:
                fastpath_rounds += 1
            else:
                sortpath_rounds += 1
            state[live] = st

        occurrences += int(alive.sum())
        walk[live] += alive.sum(axis=1)

        stops_np = vtables.sync_stops(np, state_stops)
        done = stops_np[state[live]].all(axis=1)
        if done.any():
            finished = live[done]
            rounds[finished] = current_round
            halted[finished] = True
            live = live[~done]

    if live.size:
        rounds[live] = current_round  # round budget exhausted, not halted

    # Materialize results (memoized over repeated final configurations).
    result_memo: dict[tuple, tuple[dict, dict]] = {}
    for row, position in enumerate(executed):
        state_row = state[row]
        instance_halted = bool(halted[row])
        instance_rounds = int(rounds[row])
        memo_key = (instance_halted, instance_rounds, state_row.tobytes())
        memoized = result_memo.get(memo_key)
        if memoized is None:
            sids = [int(sid) for sid in state_row]
            final_states = dict(zip(nodes, map(state_values.__getitem__, sids)))
            if instance_halted:
                outputs = dict(zip(nodes, map(output_of, sids)))
            else:
                outputs = {
                    nodes[i]: output_of(sid)
                    for i, sid in enumerate(sids)
                    if state_stops[sid]
                }
            memoized = result_memo[memo_key] = (outputs, final_states)
        results[indices[position]] = ExecutionResult(
            outputs=memoized[0].copy(),
            rounds=instance_rounds,
            halted=instance_halted,
            trace=None,
            states=memoized[1].copy(),
        )

    replicated_occurrences = 0
    position_of = {position: row for row, position in enumerate(executed)}
    for position, representative in duplicates:
        original = results[indices[representative]]
        replicated_occurrences += int(walk[position_of[representative]])
        results[indices[position]] = ExecutionResult(
            outputs=original.outputs.copy(),
            rounds=original.rounds,
            halted=original.halted,
            trace=None,
            states=dict(original.states) if original.states is not None else None,
        )

    if stats is not None:
        stats.executed += reps
        stats.replicated += len(duplicates)
        stats.rounds += int(rounds.sum())
        stats.occurrences += occurrences
        stats.replicated_occurrences += replicated_occurrences
        stats.evaluations += evaluations
    if _metrics.enabled():
        # Row-dedup path split: rounds fully served by the sorted pack-key
        # probe vs. rounds that needed the np.unique sort pass.
        if fastpath_rounds:
            _metrics.counter("vector.rounds_fastpath").inc(fastpath_rounds)
        if sortpath_rounds:
            _metrics.counter("vector.rounds_sortpath").inc(sortpath_rounds)


def _vector_arena(
    np: Any,
    fast: FastPathAlgorithm,
    tables: SweepTables,
    vtables: VectorTables,
    compiled: list[CompiledInstance],
    max_rounds: int,
    per_inputs: list[dict[Node, Any] | None],
    results: list[ExecutionResult | None],
    stats: SweepStats | None,
) -> None:
    """Execute a whole mixed-topology batch as one padded arena.

    The generalization of :func:`_vector_group` to many topologies at once:
    every topology group is collapsed (delivery signatures) exactly as the
    per-topology path does, then its representatives become rows of one
    ``(rows, max_nodes)`` state block padded to the batch-wide node, degree
    and port maxima.  The delivery maps (``port_owner``/``port_q``/sources)
    become per-row matrices instead of shared vectors, and two masks keep
    the padding inert: ``node_valid`` (padded lanes never count as alive,
    never enter the configuration table and never gate halting) and
    ``port_valid`` (padded ports never scatter into an inbox).  One round
    loop then drives every instance of every family and size in lockstep --
    a campaign shard costs a single kernel invocation.

    Per-instance results are identical to the per-topology path: each row
    evolves independently of its neighbours, so its halting round, final
    states and outputs depend only on its own (masked) lanes.  The only
    visible difference is accounting -- configuration rows are keyed at the
    batch-wide width, so dedup counters land in a different
    ``VectorTables.configs`` bucket than the per-topology path would use.
    """
    inner = fast.inner
    broadcast = inner.model.send is SendMode.BROADCAST
    receive = inner.model.receive
    vector_mode = receive is ReceiveMode.VECTOR
    set_mode = receive is ReceiveMode.SET
    project = receive.project
    transition = inner.transition
    send = inner.send
    broadcast_rule = inner.broadcast
    cls = type(inner)
    default_protocol = (
        cls.is_stopping is Algorithm.is_stopping and cls.output is Algorithm.output
    )
    is_stopping = inner.is_stopping

    state_ids = tables.state_ids
    state_values = tables.state_values
    state_stops = tables.state_stops
    state_outputs = tables.state_outputs
    msg_ids = tables.msg_ids
    msg_values = tables.msg_values

    def intern_state(state: Any) -> int:
        sid = state_ids.get(state)
        if sid is None:
            sid = state_ids[state] = len(state_values)
            state_values.append(state)
            if default_protocol:
                state_stops.append(isinstance(state, Output))
            else:
                state_stops.append(is_stopping(state))
            state_outputs.append(_MISSING)
        return sid

    def intern_msg(message: Any) -> int:
        mid = msg_ids.get(message)
        if mid is None:
            mid = msg_ids[message] = len(msg_values)
            msg_values.append(message)
        return mid

    def output_of(sid: int) -> Any:
        value = state_outputs[sid]
        if value is _MISSING:
            state = state_values[sid]
            value = state.value if default_protocol else inner.output(state)
            state_outputs[sid] = value
        return value

    # Collapse each topology group and lay out the arena rows.
    groups: dict[int, list[int]] = {}
    for index, instance in enumerate(compiled):
        groups.setdefault(id(instance.topology), []).append(index)
    layouts = []
    total_rows = 0
    max_nodes = 0
    max_deg = 0
    max_ports = 0
    for indices in groups.values():
        group = [compiled[i] for i in indices]
        group_inputs = [per_inputs[i] for i in indices]
        signature_of = delivery_signature_of(
            inner.model, any(item is not None for item in group_inputs)
        )
        executed, duplicates = collapse_instances(group, signature_of)
        topology = group[0].topology
        layouts.append((topology, group, indices, group_inputs, executed, duplicates, total_rows))
        total_rows += len(executed)
        max_nodes = max(max_nodes, len(topology.nodes))
        max_deg = max(max_deg, max(topology.degrees, default=0))
        max_ports = max(max_ports, topology.num_ports)
    if not total_rows:
        return

    state = np.zeros((total_rows, max_nodes), dtype=np.int64)
    node_valid = np.zeros((total_rows, max_nodes), dtype=bool)
    deg_mat = np.zeros((total_rows, max_nodes), dtype=np.int64)
    owner = np.zeros((total_rows, max_ports), dtype=np.int64)
    q_mat = np.zeros((total_rows, max_ports), dtype=np.int64)
    src = np.zeros((total_rows, max_ports), dtype=np.int64)
    port_valid = np.zeros((total_rows, max_ports), dtype=bool)

    initial_rows = tables.initial_rows
    for topology, group, indices, group_inputs, executed, duplicates, offset in layouts:
        nodes = topology.nodes
        n = len(nodes)
        degrees = topology.degrees
        ports = topology.num_ports
        init_row = [0] * n
        for i in range(n):
            sid = initial_rows.get(degrees[i])
            if sid is None:
                sid = initial_rows[degrees[i]] = intern_state(inner.initial_state(degrees[i]))
            init_row[i] = sid
        deg_np = np.asarray(degrees, dtype=np.int64)
        port_owner = np.repeat(np.arange(n, dtype=np.int64), deg_np)
        port_q = (
            np.concatenate([np.arange(d, dtype=np.int64) for d in degrees])
            if ports
            else np.empty(0, dtype=np.int64)
        )
        for row, position in enumerate(executed):
            r = offset + row
            item_inputs = group_inputs[position]
            if item_inputs is None:
                state[r, :n] = init_row
            else:
                state[r, :n] = [
                    intern_state(
                        inner.initial_state_with_input(degrees[i], item_inputs.get(nodes[i]))
                    )
                    for i in range(n)
                ]
            node_valid[r, :n] = True
            deg_mat[r, :n] = deg_np
            if ports:
                owner[r, :ports] = port_owner
                q_mat[r, :ports] = port_q
                port_valid[r, :ports] = True
                if broadcast:
                    src[r, :ports] = [
                        s for senders in group[position].source_nodes for s in senders
                    ]
                else:
                    src[r, :ports] = [s for slots in group[position].sources for s in slots]

    # Configuration rows are keyed at the batch-wide width (padded lanes in
    # narrower topologies carry the sentinel, which ``evaluate`` filters).
    width = 1 + max_deg
    config_table = vtables.configs.setdefault(width, {})

    def fill_send_rows(st: Any, valid: Any, deg: Any) -> None:
        """Fill the lazy send tables for the valid (sid, shape) pairs."""
        if broadcast:
            table = vtables.ensure_bcast(np, len(state_values))
            missing = (table[st] < 0) & valid
            if not missing.any():
                return
            for sid in np.unique(st[missing]):
                sid = int(sid)
                if table[sid] < 0:
                    table[sid] = (
                        0 if state_stops[sid] else intern_msg(broadcast_rule(state_values[sid]))
                    )
            return
        if max_deg == 0:
            return
        table = vtables.ensure_send(np, len(state_values), max_deg)
        fill_np = vtables.send_fill_np
        need = fill_np[st] < deg  # padded lanes have degree 0: never needed
        if not need.any():
            return
        send_fill = vtables.send_fill
        for key in np.unique(st[need] * (max_deg + 1) + deg[need]):
            sid, degree = divmod(int(key), max_deg + 1)
            filled = send_fill.get(sid, 0)
            if filled >= degree:
                continue
            if state_stops[sid]:
                table[sid, filled:degree] = 0
            else:
                value = state_values[sid]
                table[sid, filled:degree] = [
                    intern_msg(send(value, q + 1)) for q in range(filled, degree)
                ]
            send_fill[sid] = degree
            fill_np[sid] = degree

    def evaluate(row: Any) -> tuple[int, bool]:
        """Consult the algorithm for a configuration row never seen before."""
        sid = int(row[0])
        inbox = row[1:]
        real = inbox[inbox != _SENTINEL]
        vector = tuple(msg_values[int(mid)] for mid in real)
        new_state = transition(
            state_values[sid], vector if vector_mode else project(vector)
        )
        nsid = intern_state(new_state)
        return (nsid, state_stops[nsid])

    rounds = np.zeros(total_rows, dtype=np.int64)
    halted = np.zeros(total_rows, dtype=bool)
    walk = np.zeros(total_rows, dtype=np.int64)
    evaluations = 0
    occurrences = 0
    fastpath_rounds = 0
    sortpath_rounds = 0
    pack_base = -1
    pack_keys: Any = None
    pack_sids: Any = None

    stops_np = vtables.sync_stops(np, state_stops)
    done = (stops_np[state] | ~node_valid).all(axis=1)
    halted[done] = True
    live = np.nonzero(~done)[0]

    current_round = 0
    while live.size and current_round < max_rounds:
        current_round += 1
        st = state[live]
        valid = node_valid[live]
        alive = ~stops_np[st] & valid
        deg = deg_mat[live]

        fill_send_rows(st, valid, deg)
        if broadcast:
            out = vtables.bcast_table[st]  # (L, max_nodes)
        elif max_ports:
            sid_at_port = np.take_along_axis(st, owner[live], axis=1)
            out = vtables.send_table[sid_at_port, q_mat[live]]  # (L, max_ports)
        else:
            out = np.empty((len(live), 0), dtype=np.int64)

        inbox = np.full((len(live), max_nodes, max_deg), _SENTINEL, dtype=np.int64)
        if max_ports:
            recv = np.take_along_axis(out, src[live], axis=1)
            pv = port_valid[live]
            row_idx = np.nonzero(pv)[0]
            inbox[row_idx, owner[live][pv], q_mat[live][pv]] = recv[pv]
        if not vector_mode and max_deg > 1:
            inbox.sort(axis=2)
            if set_mode:
                dup = inbox[:, :, 1:] == inbox[:, :, :-1]
                if dup.any():
                    inbox[:, :, 1:][dup] = _SENTINEL
                    inbox.sort(axis=2)

        cfg = np.concatenate([st[:, :, None], inbox], axis=2)
        rows = cfg[alive]
        if rows.size:
            base = len(msg_values) + 1
            packable = (len(state_values) + 1) * base ** max_deg < _PACK_LIMIT
            packed = None
            handled = False
            if packable:
                packed = rows[:, 0].copy()
                for col in range(1, max_deg + 1):
                    slot = rows[:, col]
                    packed *= base
                    packed += np.where(slot == _SENTINEL, base - 1, slot)
                if base == pack_base and pack_keys is not None and pack_keys.size:
                    pos = np.searchsorted(pack_keys, packed)
                    np.minimum(pos, len(pack_keys) - 1, out=pos)
                    if (pack_keys[pos] == packed).all():
                        st[alive] = pack_sids[pos]
                        handled = True
            if not handled:
                if packable:
                    uniq_keys, first, inverse = np.unique(
                        packed, return_index=True, return_inverse=True
                    )
                    uniq = rows[first]
                else:
                    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
                inverse = inverse.reshape(-1)
                new_sids = np.empty(len(uniq), dtype=np.int64)
                table_get = config_table.get
                for u in range(len(uniq)):
                    row = uniq[u]
                    key = row.tobytes()
                    entry = table_get(key)
                    if entry is None:
                        evaluations += 1
                        entry = config_table[key] = evaluate(row)
                    new_sids[u] = entry[0]
                st[alive] = new_sids[inverse]
                if packable:
                    if base == pack_base and pack_keys is not None and pack_keys.size:
                        merged = np.union1d(pack_keys, uniq_keys)
                        merged_sids = np.empty(len(merged), dtype=np.int64)
                        merged_sids[np.searchsorted(merged, pack_keys)] = pack_sids
                        merged_sids[np.searchsorted(merged, uniq_keys)] = new_sids
                        pack_keys, pack_sids = merged, merged_sids
                    else:
                        pack_base = base
                        pack_keys, pack_sids = uniq_keys, new_sids
                else:
                    pack_base = -1
                    pack_keys = pack_sids = None
            if handled:
                fastpath_rounds += 1
            else:
                sortpath_rounds += 1
            state[live] = st

        occurrences += int(alive.sum())
        walk[live] += alive.sum(axis=1)

        stops_np = vtables.sync_stops(np, state_stops)
        done = (stops_np[state[live]] | ~node_valid[live]).all(axis=1)
        if done.any():
            finished = live[done]
            rounds[finished] = current_round
            halted[finished] = True
            live = live[~done]

    if live.size:
        rounds[live] = current_round  # round budget exhausted, not halted

    # Materialize results (memoized over repeated final configurations,
    # keyed per topology group: equal state rows of different topologies
    # name different nodes).
    result_memo: dict[tuple, tuple[dict, dict]] = {}
    total_executed = 0
    total_duplicates = 0
    replicated_occurrences = 0
    for group_index, layout in enumerate(layouts):
        topology, group, indices, group_inputs, executed, duplicates, offset = layout
        nodes = topology.nodes
        n = len(nodes)
        for row, position in enumerate(executed):
            r = offset + row
            state_row = state[r, :n]
            instance_halted = bool(halted[r])
            instance_rounds = int(rounds[r])
            memo_key = (group_index, instance_halted, instance_rounds, state_row.tobytes())
            memoized = result_memo.get(memo_key)
            if memoized is None:
                sids = [int(sid) for sid in state_row]
                final_states = dict(zip(nodes, map(state_values.__getitem__, sids)))
                if instance_halted:
                    outputs = dict(zip(nodes, map(output_of, sids)))
                else:
                    outputs = {
                        nodes[i]: output_of(sid)
                        for i, sid in enumerate(sids)
                        if state_stops[sid]
                    }
                memoized = result_memo[memo_key] = (outputs, final_states)
            results[indices[position]] = ExecutionResult(
                outputs=memoized[0].copy(),
                rounds=instance_rounds,
                halted=instance_halted,
                trace=None,
                states=memoized[1].copy(),
            )
        position_of = {position: row for row, position in enumerate(executed)}
        for position, representative in duplicates:
            original = results[indices[representative]]
            replicated_occurrences += int(walk[offset + position_of[representative]])
            results[indices[position]] = ExecutionResult(
                outputs=original.outputs.copy(),
                rounds=original.rounds,
                halted=original.halted,
                trace=None,
                states=dict(original.states) if original.states is not None else None,
            )
        total_executed += len(executed)
        total_duplicates += len(duplicates)

    if stats is not None:
        stats.executed += total_executed
        stats.replicated += total_duplicates
        stats.rounds += int(rounds.sum())
        stats.occurrences += occurrences
        stats.replicated_occurrences += replicated_occurrences
        stats.evaluations += evaluations
    if _metrics.enabled():
        _metrics.counter("vector.arena_batches").inc()
        _metrics.gauge("vector.arena_rows").set(total_rows)
        if fastpath_rounds:
            _metrics.counter("vector.rounds_fastpath").inc(fastpath_rounds)
        if sortpath_rounds:
            _metrics.counter("vector.rounds_sortpath").inc(sortpath_rounds)
