"""The kernel plan cache: warm sweep/vector tables as portable artifacts.

The superposed sweep engine (:mod:`repro.execution.sweep`) and the NumPy
vector kernel (:mod:`repro.execution.vector`) amortize their interned
transition/send/configuration tables across every batch that shares one
:class:`~repro.machines.fastpath.FastPathAlgorithm` wrapper -- but only
within one process lifetime.  Every campaign worker, every resumed run and
every service job used to rebuild the same tables from scratch, re-running
the algorithm's transition function for configurations the store already
proves were evaluated once.

This module turns those tables into a **kernel plan**: a content-addressed,
serializable snapshot keyed by ``(algorithm content hash, model class,
receive/send mode, engine)``:

* :func:`capture_plan` / :func:`install_plan` move the tables between a live
  wrapper and a :class:`KernelPlan` (the unpicklable lazy-row builders are
  dropped on capture and rebound by the sweep engine on first use);
* :meth:`KernelPlan.to_bytes` / :meth:`KernelPlan.from_bytes` are the store
  artifact format (campaign backends persist plans under the ``"plan"``
  artifact kind, so resumes, migrated stores and repeated service jobs start
  hot);
* :class:`PlanPublisher` / :func:`load_plans` publish a set of plans through
  one ``multiprocessing.shared_memory`` segment -- the NumPy-backed
  :class:`~repro.execution.vector.VectorTables` rows travel as raw array
  bytes, the pure-python sweep tables as pickled metadata -- so a shard's
  workers map one read-only plan instead of each rebuilding it (with an
  inline-pickle fallback when shared memory is unavailable);
* :func:`capture_delta` / :func:`fold_delta` carry a worker's *local
  discoveries* (states, messages and configurations interned beyond its
  install baseline) back to the parent, which folds them by value -- worker
  ids at or beyond the baseline are re-interned through the delta's value
  lists, so id spaces that diverged across workers merge soundly -- and
  re-publishes the folded plan for later shards.

Correctness never depends on a plan: installing one only pre-fills tables
whose entries are deterministic functions of the algorithm (the paper's
Section 1.1 state-machine semantics, the same argument that makes transition
memoization sound), and every serialization or shared-memory failure degrades
to a cold build.  Campaign runs with and without the plan cache therefore
produce byte-identical records and manifest digests.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from dataclasses import dataclass, field
from itertools import islice
from typing import Any

from repro.engines.registry import numpy_or_none
from repro.execution import sweep as _sweep
from repro.execution import vector as _vector
from repro.execution.sweep import SweepTables, _LazyRowTable, sweep_tables_for
from repro.execution.vector import VectorTables, _SENTINEL, vector_tables_for
from repro.machines.fastpath import FastPathAlgorithm
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

__all__ = [
    "ARTIFACT_KIND",
    "PLAN_FORMAT",
    "KernelPlan",
    "PlanBaseline",
    "PlanDelta",
    "PlanPublisher",
    "PlanRef",
    "algorithm_fingerprint",
    "capture_delta",
    "capture_plan",
    "fold_delta",
    "install_plan",
    "load_plans",
    "plan_baseline",
    "plan_key",
]

#: Bumped whenever the serialized layout changes; part of the plan key, so a
#: layout change simply invalidates old artifacts instead of misreading them.
PLAN_FORMAT = 1

#: The campaign-store artifact kind plans are persisted under.
ARTIFACT_KIND = "plan"

_PLAN_TAG = "repro-kernel-plan"


def _is_missing(value: Any) -> bool:
    """Whether a ``state_outputs`` entry is unfilled.

    The sweep and vector modules each keep their own ``_MISSING`` sentinel;
    a shared table may hold either, and neither survives serialization.
    """
    return value is _sweep._MISSING or value is _vector._MISSING


# --------------------------------------------------------------------------- #
# Keying
# --------------------------------------------------------------------------- #


def algorithm_fingerprint(algorithm: Any) -> str:
    """A content hash of an algorithm object.

    Pickle bytes when the algorithm pickles (the registered algorithms are
    deterministic value objects, so equal algorithms hash equal), ``repr``
    otherwise.  Collisions across *different* algorithms would only warm the
    wrong tables with entries the transition function never looks up -- the
    configuration keys embed the actual interned values -- so a weak
    fallback degrades performance, never correctness.
    """
    inner = getattr(algorithm, "inner", algorithm)
    try:
        material = pickle.dumps(inner, protocol=4)
    except Exception:  # noqa: BLE001 - any unpicklable algorithm
        material = repr(inner).encode("utf-8", "replace")
    return hashlib.sha256(material).hexdigest()


def plan_key(algorithm: Any, engine: str) -> str:
    """The content-addressed artifact key of an algorithm/engine pair.

    Covers the plan format, the algorithm's type and content fingerprint,
    the model coordinates (receive/send mode, which determine the paper's
    model class), the engine and the Python minor version (pickled state
    values do not travel across interpreter versions) -- changing any of
    them invalidates the cache by pointing at a different artifact.
    """
    inner = getattr(algorithm, "inner", algorithm)
    model = inner.model
    material = "\n".join(
        (
            f"format={PLAN_FORMAT}",
            f"type={type(inner).__module__}.{type(inner).__qualname__}",
            f"algorithm={algorithm_fingerprint(inner)}",
            f"receive={model.receive.name}",
            f"send={model.send.name}",
            f"engine={engine}",
            f"python={sys.version_info.major}.{sys.version_info.minor}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# The plan artifact
# --------------------------------------------------------------------------- #


class KernelPlan:
    """A serializable snapshot of one wrapper's sweep/vector tables.

    The sweep side mirrors :class:`~repro.execution.sweep.SweepTables`
    (interned state/message values, stop flags, filled outputs as sparse
    ``(id, value)`` pairs, the global configuration table, send/initial/
    rebuild rows -- rebuild rows as plain dicts, their lazy builders are
    process-local closures).  The vector side carries the NumPy mirrors of
    :class:`~repro.execution.vector.VectorTables`: the trimmed send/broadcast
    tables and the per-width byte-keyed configuration tables (stop flags are
    re-derived from the sweep side on install).
    """

    __slots__ = (
        "state_values",
        "state_stops",
        "state_outputs",
        "msg_values",
        "configs",
        "send_rows",
        "initial_rows",
        "rebuild_rows",
        "vector_configs",
        "vector_send",
        "vector_send_fill",
        "vector_bcast",
    )

    def __init__(self) -> None:
        self.state_values: list[Any] = []
        self.state_stops: list[bool] = []
        self.state_outputs: list[tuple[int, Any]] = []
        self.msg_values: list[Any] = []
        self.configs: dict[tuple[int, tuple[int, ...]], tuple[int, bool]] = {}
        self.send_rows: dict[tuple[int, int], tuple[int, ...]] = {}
        self.initial_rows: dict[int, int] = {}
        self.rebuild_rows: dict[Any, dict[int, Any]] = {}
        self.vector_configs: dict[int, dict[bytes, tuple[int, bool]]] = {}
        self.vector_send: Any = None
        self.vector_send_fill: dict[int, int] = {}
        self.vector_bcast: Any = None

    @property
    def empty(self) -> bool:
        return not self.state_values and not self.configs and not self.vector_configs

    def counts(self) -> dict[str, int]:
        """Size summary (metrics, tests, the CLI report)."""
        return {
            "states": len(self.state_values),
            "messages": len(self.msg_values),
            "configs": len(self.configs),
            "send_rows": len(self.send_rows),
            "vector_configs": sum(map(len, self.vector_configs.values())),
        }

    # -- serialization ------------------------------------------------- #

    def _state(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def _from_state(cls, state: dict[str, Any]) -> "KernelPlan":
        plan = cls()
        for slot in cls.__slots__:
            if slot in state:
                setattr(plan, slot, state[slot])
        return plan

    def to_bytes(self) -> bytes:
        """The store-artifact encoding (pickle; arrays pickle via NumPy)."""
        return pickle.dumps((_PLAN_TAG, PLAN_FORMAT, self._state()), protocol=4)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "KernelPlan":
        """Decode a stored artifact; :class:`ValueError` on anything else."""
        try:
            tag, fmt, state = pickle.loads(blob)
        except Exception as error:  # noqa: BLE001 - unpickling failure modes vary
            raise ValueError(f"not a kernel plan artifact: {error}") from None
        if tag != _PLAN_TAG or fmt != PLAN_FORMAT:
            raise ValueError(f"not a format-{PLAN_FORMAT} kernel plan artifact")
        return cls._from_state(state)


def capture_plan(fast: FastPathAlgorithm) -> KernelPlan:
    """Snapshot a wrapper's tables into a plan (shallow copies, stable)."""
    plan = KernelPlan()
    tables = fast.sweep_tables
    if tables is not None:
        plan.state_values = list(tables.state_values)
        plan.state_stops = list(tables.state_stops)
        plan.state_outputs = [
            (i, value)
            for i, value in enumerate(tables.state_outputs)
            if not _is_missing(value)
        ]
        plan.msg_values = list(tables.msg_values)
        plan.configs = dict(tables.configs)
        plan.send_rows = dict(tables.send_rows)
        plan.initial_rows = dict(tables.initial_rows)
        plan.rebuild_rows = {key: dict(table) for key, table in tables.rebuild_rows.items()}
    vtables = fast.vector_tables
    if vtables is not None and tables is not None:
        states = len(tables.state_values)
        if vtables.send_table is not None and states:
            plan.vector_send = vtables.send_table[:states].copy()
            plan.vector_send_fill = dict(vtables.send_fill)
        if vtables.bcast_table is not None and states:
            plan.vector_bcast = vtables.bcast_table[:states].copy()
        plan.vector_configs = {
            width: dict(table) for width, table in vtables.configs.items() if table
        }
    return plan


def install_plan(fast: FastPathAlgorithm, plan: KernelPlan) -> "PlanBaseline":
    """Replace a wrapper's tables with a plan's; returns the delta baseline.

    Rebuild-row tables are installed with their builder unbound
    (``_LazyRowTable(None)``); the sweep engine rebinds the builder closure
    on the table's first use.  Vector arrays are copied into fresh
    worker-local :class:`VectorTables` (runs mutate them in place, so a
    shared read-only view would not do).
    """
    tables = SweepTables()
    if plan.msg_values:
        tables.msg_values = list(plan.msg_values)
        tables.msg_ids = {value: mid for mid, value in enumerate(plan.msg_values)}
    tables.state_values = list(plan.state_values)
    tables.state_ids = {value: sid for sid, value in enumerate(plan.state_values)}
    tables.state_stops = list(plan.state_stops)
    outputs: list[Any] = [_sweep._MISSING] * len(plan.state_values)
    for sid, value in plan.state_outputs:
        if 0 <= sid < len(outputs):
            outputs[sid] = value
    tables.state_outputs = outputs
    tables.configs = dict(plan.configs)
    tables.send_rows = dict(plan.send_rows)
    tables.initial_rows = dict(plan.initial_rows)
    rebuild: dict[Any, _LazyRowTable] = {}
    for key, rows in plan.rebuild_rows.items():
        table = _LazyRowTable(None)
        table.update(rows)
        rebuild[key] = table
    tables.rebuild_rows = rebuild
    fast.sweep_tables = tables

    fast.vector_tables = None
    np = numpy_or_none()
    if np is not None and (
        plan.vector_configs or plan.vector_send is not None or plan.vector_bcast is not None
    ):
        vtables = VectorTables()
        if tables.state_stops:
            vtables.sync_stops(np, tables.state_stops)
        if plan.vector_send is not None and plan.vector_send.size:
            rows, cols = plan.vector_send.shape
            table = vtables.ensure_send(np, rows, cols)
            table[:rows, :cols] = plan.vector_send
            vtables.send_fill = dict(plan.vector_send_fill)
            fill_np = vtables.send_fill_np
            for sid, filled in vtables.send_fill.items():
                if sid < len(fill_np):
                    fill_np[sid] = filled
        if plan.vector_bcast is not None and plan.vector_bcast.size:
            table = vtables.ensure_bcast(np, len(plan.vector_bcast))
            table[: len(plan.vector_bcast)] = plan.vector_bcast
        vtables.configs = {width: dict(t) for width, t in plan.vector_configs.items()}
        fast.vector_tables = vtables
    return plan_baseline(fast)


# --------------------------------------------------------------------------- #
# Deltas: worker discoveries folded back by value
# --------------------------------------------------------------------------- #


@dataclass
class PlanBaseline:
    """Table sizes at plan-install time: everything beyond them is a delta."""

    states: int = 0
    msgs: int = 0
    configs: int = 0
    send_rows: int = 0
    rebuild: dict[Any, int] = field(default_factory=dict)
    vector: dict[int, int] = field(default_factory=dict)


def plan_baseline(fast: FastPathAlgorithm) -> PlanBaseline:
    """The current table sizes of a wrapper (delta capture reference)."""
    baseline = PlanBaseline()
    tables = fast.sweep_tables
    if tables is not None:
        baseline.states = len(tables.state_values)
        baseline.msgs = len(tables.msg_values)
        baseline.configs = len(tables.configs)
        baseline.send_rows = len(tables.send_rows)
        baseline.rebuild = {key: len(table) for key, table in tables.rebuild_rows.items()}
    vtables = fast.vector_tables
    if vtables is not None:
        baseline.vector = {width: len(table) for width, table in vtables.configs.items()}
    return baseline


class PlanDelta:
    """Everything a worker interned beyond its install baseline.

    Ids below the baseline are plan-prefix-stable (the parent holds the same
    prefix, because it only ever appends); ids at or beyond it are worker
    -local and carry their *values* (``new_states`` / ``new_msgs``), so the
    parent can re-intern them and remap every key/row that references them.
    Deltas are cumulative since install: folding is keyed setdefault, so
    folding the same delta twice (or overlapping deltas from shards of one
    worker) is idempotent.
    """

    __slots__ = (
        "base_states",
        "base_msgs",
        "new_states",
        "new_msgs",
        "new_configs",
        "new_send_rows",
        "initial_rows",
        "new_rebuild",
        "new_vector",
    )

    def __init__(self) -> None:
        self.base_states = 0
        self.base_msgs = 1
        self.new_states: list[tuple[Any, bool, bool, Any]] = []
        self.new_msgs: list[Any] = []
        self.new_configs: list[tuple[tuple[int, tuple[int, ...]], tuple[int, bool]]] = []
        self.new_send_rows: list[tuple[tuple[int, int], tuple[int, ...]]] = []
        self.initial_rows: dict[int, int] = {}
        self.new_rebuild: dict[Any, list[tuple[int, Any]]] = {}
        self.new_vector: dict[int, list[tuple[bytes, tuple[int, bool]]]] = {}

    @property
    def empty(self) -> bool:
        return not (
            self.new_states
            or self.new_msgs
            or self.new_configs
            or self.new_send_rows
            or self.new_rebuild
            or self.new_vector
        )


def capture_delta(fast: FastPathAlgorithm, baseline: PlanBaseline) -> PlanDelta | None:
    """The wrapper's discoveries beyond ``baseline``; ``None`` when there are
    none or when the tables were cleared since install (the baseline no
    longer names a stable prefix, so no sound delta exists)."""
    tables = fast.sweep_tables
    if tables is None:
        return None
    if (
        len(tables.state_values) < baseline.states
        or len(tables.msg_values) < baseline.msgs
        or len(tables.configs) < baseline.configs
        or len(tables.send_rows) < baseline.send_rows
    ):
        return None
    delta = PlanDelta()
    delta.base_states = baseline.states
    delta.base_msgs = baseline.msgs
    outputs = tables.state_outputs
    for sid in range(baseline.states, len(tables.state_values)):
        value = outputs[sid]
        filled = not _is_missing(value)
        delta.new_states.append(
            (tables.state_values[sid], tables.state_stops[sid], filled, value if filled else None)
        )
    delta.new_msgs = list(tables.msg_values[baseline.msgs :])
    delta.new_configs = list(islice(tables.configs.items(), baseline.configs, None))
    delta.new_send_rows = list(islice(tables.send_rows.items(), baseline.send_rows, None))
    delta.initial_rows = dict(tables.initial_rows)
    for key, table in tables.rebuild_rows.items():
        base = baseline.rebuild.get(key, 0)
        if len(table) < base:
            return None
        if len(table) > base:
            delta.new_rebuild[key] = list(islice(table.items(), base, None))
    vtables = fast.vector_tables
    if vtables is not None:
        for width, table in vtables.configs.items():
            base = baseline.vector.get(width, 0)
            if len(table) < base:
                return None
            if len(table) > base:
                delta.new_vector[width] = list(islice(table.items(), base, None))
    return None if delta.empty else delta


def fold_delta(fast: FastPathAlgorithm, delta: PlanDelta) -> bool:
    """Fold a worker delta into a wrapper's live tables; True if anything new.

    Values are re-interned (worker ids beyond the baseline map through the
    delta's value lists, ids below it are shared prefix), and every folded
    key is a setdefault -- entries the parent already holds, from its own
    work or another worker's delta, win unchanged.
    """
    tables = sweep_tables_for(fast)
    if (
        len(tables.state_values) < delta.base_states
        or len(tables.msg_values) < delta.base_msgs
    ):
        return False

    state_ids = tables.state_ids
    state_values = tables.state_values
    state_stops = tables.state_stops
    state_outputs = tables.state_outputs
    changed = False
    smap: list[int] = []
    for value, stop, filled, output in delta.new_states:
        sid = state_ids.get(value)
        if sid is None:
            sid = state_ids[value] = len(state_values)
            state_values.append(value)
            state_stops.append(stop)
            state_outputs.append(output if filled else _sweep._MISSING)
            changed = True
        elif filled and _is_missing(state_outputs[sid]):
            state_outputs[sid] = output
        smap.append(sid)
    msg_ids = tables.msg_ids
    msg_values = tables.msg_values
    mmap: list[int] = []
    for value in delta.new_msgs:
        mid = msg_ids.get(value)
        if mid is None:
            mid = msg_ids[value] = len(msg_values)
            msg_values.append(value)
            changed = True
        mmap.append(mid)

    base_states, base_msgs = delta.base_states, delta.base_msgs

    def rs(sid: int) -> int:
        return sid if sid < base_states else smap[sid - base_states]

    def rm(mid: int) -> int:
        return mid if mid < base_msgs else mmap[mid - base_msgs]

    configs = tables.configs
    for (sid, inbox), (nsid, stopped) in delta.new_configs:
        key = (rs(sid), tuple(map(rm, inbox)))
        if key not in configs:
            configs[key] = (rs(nsid), stopped)
            changed = True
    send_rows = tables.send_rows
    for (sid, degree), row in delta.new_send_rows:
        key = (rs(sid), degree)
        if key not in send_rows:
            send_rows[key] = tuple(map(rm, row))
            changed = True
    for degree, sid in delta.initial_rows.items():
        if degree not in tables.initial_rows:
            tables.initial_rows[degree] = rs(sid)
            changed = True
    for shape, items in delta.new_rebuild.items():
        table = tables.rebuild_rows.get(shape)
        if table is None:
            table = tables.rebuild_rows[shape] = _LazyRowTable(None)
        for sid, row in items:
            key = rs(sid)
            if key not in table:
                table[key] = tuple(map(rm, row)) if isinstance(row, tuple) else rm(row)
                changed = True

    if delta.new_vector:
        np = numpy_or_none()
        if np is not None:
            vtables = vector_tables_for(fast)
            for width, items in delta.new_vector.items():
                table = vtables.configs.setdefault(width, {})
                for key_bytes, (nsid, stopped) in items:
                    row = np.frombuffer(key_bytes, dtype=np.int64).copy()
                    row[0] = rs(int(row[0]))
                    for column in range(1, len(row)):
                        mid = int(row[column])
                        if mid != _SENTINEL:
                            row[column] = rm(mid)
                    key = row.tobytes()
                    if key not in table:
                        table[key] = (rs(nsid), stopped)
                        changed = True
    return changed


# --------------------------------------------------------------------------- #
# Shared-memory publication
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlanRef:
    """A picklable handle to a published plan set.

    ``kind == "shm"`` names a ``multiprocessing.shared_memory`` segment (the
    vector arrays travel as raw bytes there); ``kind == "inline"`` carries
    the full pickle in :attr:`payload` (the fallback when shared memory is
    unavailable).  ``generation`` increases with every re-publication, so a
    worker handed an older ref than the one it already loaded keeps its
    current plans.
    """

    kind: str
    name: str | None
    payload: bytes | None
    generation: int


#: The plan fields published as raw shared-memory array regions.
_ARRAY_SLOTS = ("vector_send", "vector_bcast")


class PlanPublisher:
    """Publishes plan sets for shard workers; owns the live shm segment.

    One generation is kept alive behind the current one, so tasks dispatched
    just before a re-publication can still load their (slightly stale) ref;
    anything older is unlinked.  Every publication failure degrades to an
    inline-pickle ref, and an unloadable ref degrades to a cold build on the
    worker -- never an error.
    """

    def __init__(self) -> None:
        self.generation = 0
        self._segment: Any = None
        self._retired: Any = None

    def publish(self, plans: dict[str, KernelPlan]) -> PlanRef | None:
        self.generation += 1
        metas: dict[str, dict[str, Any]] = {}
        arrays: list[Any] = []
        for name, plan in plans.items():
            state = plan._state()
            for slot in _ARRAY_SLOTS:
                array = state.get(slot)
                if array is not None:
                    state[slot] = ("__array__", len(arrays))
                    arrays.append(array)
            metas[name] = state
        ref = self._publish_shm(metas, arrays)
        if ref is not None:
            if _metrics.enabled():
                _metrics.counter("plan.cache.publish_shm").inc()
            return ref
        # Inline fallback: rebuild full states (arrays pickle via NumPy).
        try:
            payload = pickle.dumps(
                {name: plan._state() for name, plan in plans.items()}, protocol=4
            )
        except Exception:  # noqa: BLE001 - unpicklable plan content
            return None
        return PlanRef("inline", None, payload, self.generation)

    def _publish_shm(
        self, metas: dict[str, dict[str, Any]], arrays: list[Any]
    ) -> PlanRef | None:
        try:
            from multiprocessing import shared_memory

            descriptors = []
            offset = 0
            for array in arrays:
                descriptors.append((str(array.dtype), array.shape, offset, array.nbytes))
                offset += array.nbytes
            header = pickle.dumps((metas, descriptors), protocol=4)
            total = 8 + len(header) + offset
            segment = shared_memory.SharedMemory(create=True, size=max(total, 8))
            buf = segment.buf
            buf[:8] = len(header).to_bytes(8, "little")
            buf[8 : 8 + len(header)] = header
            base = 8 + len(header)
            for array, (_, _, aoff, nbytes) in zip(arrays, descriptors):
                buf[base + aoff : base + aoff + nbytes] = array.tobytes()
        except Exception:  # noqa: BLE001 - no shm, size limits, pickling
            return None
        self._retire(self._segment)
        self._segment = segment
        return PlanRef("shm", segment.name, None, self.generation)

    def _retire(self, segment: Any) -> None:
        old, self._retired = self._retired, segment
        if old is not None:
            try:
                old.close()
                old.unlink()
            except Exception:  # noqa: BLE001 - already gone
                pass

    def close(self) -> None:
        """Release every segment this publisher still owns."""
        self._retire(self._segment)
        self._retire(None)
        self._segment = None


class _TrackerStub:
    """A no-op stand-in for ``multiprocessing.resource_tracker``."""

    @staticmethod
    def register(name: str, rtype: str) -> None:  # pragma: no cover - trivial
        pass

    @staticmethod
    def unregister(name: str, rtype: str) -> None:  # pragma: no cover - trivial
        pass


def _attach_untracked(shared_memory: Any, name: str) -> Any:
    """Attach to an existing segment without resource-tracker registration.

    Before 3.13 (``track=False``) attaching registers the segment just like
    creating it did.  The creator (the parent's :class:`PlanPublisher`) is
    the sole owner and unlinks deterministically, so an attach-side
    registration is at best a dedupe no-op under the pool's shared tracker
    -- and at worst a race: a register that lands after the parent's unlink
    re-adds the name and the tracker complains about "leaked" segments at
    shutdown.  Swapping the module's tracker reference for the duration of
    the attach suppresses exactly that registration; plan loads happen on
    single-threaded pool workers, so the swap is not observable elsewhere.
    """
    original = getattr(shared_memory, "resource_tracker", None)
    if original is None:  # non-POSIX layout: nothing registers on attach
        return shared_memory.SharedMemory(name=name)
    shared_memory.resource_tracker = _TrackerStub
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        shared_memory.resource_tracker = original


def load_plans(ref: PlanRef | None) -> dict[str, KernelPlan] | None:
    """Load a published plan set; ``None`` on any failure (cold build)."""
    if ref is None:
        return None
    with _span("plan.load", kind=ref.kind, generation=ref.generation):
        try:
            if ref.kind == "inline":
                states = pickle.loads(ref.payload)
                return {name: KernelPlan._from_state(state) for name, state in states.items()}
            from multiprocessing import shared_memory

            segment = _attach_untracked(shared_memory, ref.name)
            try:
                buf = segment.buf
                header_len = int.from_bytes(bytes(buf[:8]), "little")
                metas, descriptors = pickle.loads(bytes(buf[8 : 8 + header_len]))
                np = numpy_or_none()
                base = 8 + header_len
                arrays: list[Any] = []
                for dtype, shape, aoff, nbytes in descriptors:
                    if np is None:
                        arrays.append(None)
                        continue
                    raw = bytes(buf[base + aoff : base + aoff + nbytes])
                    arrays.append(np.frombuffer(raw, dtype=dtype).reshape(shape).copy())
                plans: dict[str, KernelPlan] = {}
                for name, state in metas.items():
                    for slot in _ARRAY_SLOTS:
                        value = state.get(slot)
                        if isinstance(value, tuple) and value and value[0] == "__array__":
                            state[slot] = arrays[value[1]]
                    plans[name] = KernelPlan._from_state(state)
                return plans
            finally:
                segment.close()
        except Exception:  # noqa: BLE001 - stale ref, no shm, bad pickle
            if _metrics.enabled():
                _metrics.counter("plan.cache.load_failures").inc()
            return None
