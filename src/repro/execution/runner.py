"""The synchronous execution engine (Section 1.3).

Given an algorithm ``A``, a graph ``G`` and a port numbering ``p``, the
execution proceeds in synchronous rounds: every node sends a message through
each of its output ports, receives one message through each of its input
ports, and updates its state.  Which *view* of the received messages the
algorithm sees (vector / multiset / set) and whether it may address output
ports individually is determined by the algorithm's model -- the engine itself
is shared by all seven classes, mirroring the way the paper compares them on
identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering, consistent_port_numbering
from repro.machines.algorithm import NO_MESSAGE, Algorithm
from repro.machines.models import SendMode
from repro.execution.trace import Trace

#: Default bound on the number of rounds before the runner gives up.
DEFAULT_MAX_ROUNDS = 10_000


class ExecutionError(RuntimeError):
    """Raised when an execution does not halt within the round budget."""


@dataclass
class ExecutionResult:
    """The outcome of running an algorithm on ``(G, p)``.

    Attributes
    ----------
    outputs:
        The local output ``S(v)`` of every node (defined only if ``halted``).
    rounds:
        The time ``T`` at which the last node stopped.
    halted:
        Whether every node reached a stopping state within the round budget.
    trace:
        The full execution trace, if recording was requested.
    """

    outputs: dict[Node, Any]
    rounds: int
    halted: bool
    trace: Trace | None = None

    def output_vector(self) -> dict[Node, Any]:
        """Alias for :attr:`outputs` (the solution ``S`` of Section 1.4)."""
        return self.outputs


def run(
    algorithm: Algorithm,
    graph: Graph,
    numbering: PortNumbering | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    require_halt: bool = True,
    inputs: dict[Node, Any] | None = None,
) -> ExecutionResult:
    """Execute ``algorithm`` on ``(graph, numbering)`` until every node stops.

    Parameters
    ----------
    algorithm:
        The distributed algorithm; its :attr:`~repro.machines.algorithm.
        Algorithm.model` determines how messages are constructed and
        presented.
    graph:
        The input graph.
    numbering:
        The port numbering; defaults to the canonical consistent numbering.
    max_rounds:
        Upper bound on the number of communication rounds.
    record_trace:
        Whether to record a full :class:`~repro.execution.trace.Trace`.
    require_halt:
        If ``True`` (default), raise :class:`ExecutionError` when the bound is
        exceeded; otherwise return a result with ``halted=False``.
    inputs:
        Optional local inputs ``f(u)`` (Section 3.4, labelled graphs).  When
        given, the initial state of node ``u`` is
        ``algorithm.initial_state_with_input(deg(u), inputs.get(u))``.
    """
    if numbering is None:
        numbering = consistent_port_numbering(graph)
    elif numbering.graph != graph:
        raise ValueError("the port numbering belongs to a different graph")

    broadcast = algorithm.model.send is SendMode.BROADCAST
    if inputs is None:
        states: dict[Node, Any] = {
            node: algorithm.initial_state(graph.degree(node)) for node in graph.nodes
        }
    else:
        states = {
            node: algorithm.initial_state_with_input(graph.degree(node), inputs.get(node))
            for node in graph.nodes
        }
    trace = Trace() if record_trace else None
    if trace is not None:
        trace.state_history.append(dict(states))
        trace.received_messages.append({})

    rounds = 0
    while not all(algorithm.is_stopping(states[node]) for node in graph.nodes):
        if rounds >= max_rounds:
            if require_halt:
                raise ExecutionError(
                    f"{algorithm.name} did not halt on {graph!r} within {max_rounds} rounds"
                )
            return ExecutionResult(outputs={}, rounds=rounds, halted=False, trace=trace)
        rounds += 1

        # Message construction: what each node emits through each output port.
        outgoing: dict[tuple[Node, int], Any] = {}
        for node in graph.nodes:
            state = states[node]
            degree = graph.degree(node)
            if algorithm.is_stopping(state):
                for port in range(1, degree + 1):
                    outgoing[(node, port)] = NO_MESSAGE
            elif broadcast:
                message = algorithm.broadcast(state)
                for port in range(1, degree + 1):
                    outgoing[(node, port)] = message
            else:
                for port in range(1, degree + 1):
                    outgoing[(node, port)] = algorithm.send(state, port)

        # Message delivery: input port (u, i) receives from p^{-1}((u, i)).
        received: dict[tuple[Node, int], Any] = {}
        for node in graph.nodes:
            for in_port in range(1, graph.degree(node) + 1):
                source, out_port = numbering.inverse(node, in_port)
                received[(node, in_port)] = outgoing[(source, out_port)]

        # State transition on the model-specific projection of the received vector.
        new_states: dict[Node, Any] = {}
        for node in graph.nodes:
            state = states[node]
            if algorithm.is_stopping(state):
                new_states[node] = state
                continue
            vector = tuple(
                received[(node, in_port)] for in_port in range(1, graph.degree(node) + 1)
            )
            projected = algorithm.model.receive.project(vector)
            new_states[node] = algorithm.transition(state, projected)
        states = new_states

        if trace is not None:
            trace.state_history.append(dict(states))
            trace.received_messages.append(received)

    outputs = {node: algorithm.output(states[node]) for node in graph.nodes}
    return ExecutionResult(outputs=outputs, rounds=rounds, halted=True, trace=trace)
