"""The synchronous execution engine (Section 1.3) -- compatibility front door.

Given an algorithm ``A``, a graph ``G`` and a port numbering ``p``, the
execution proceeds in synchronous rounds: every node sends a message through
each of its output ports, receives one message through each of its input
ports, and updates its state.  Which *view* of the received messages the
algorithm sees (vector / multiset / set) and whether it may address output
ports individually is determined by the algorithm's model -- the engine itself
is shared by all seven classes, mirroring the way the paper compares them on
identical inputs.

:func:`run` is a thin wrapper over the compiled engine of
:mod:`repro.execution.engine`: it compiles ``(graph, numbering)`` into flat
index arrays and executes the active-set round loop.  The original
dictionary-based loop survives as :func:`repro.execution.legacy.run_reference`
for differential tests and speedup benchmarks; batch workloads should use
:func:`repro.execution.engine.run_many` directly.
"""

from __future__ import annotations

from typing import Any

from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering
from repro.machines.algorithm import Algorithm
from repro.execution.engine import (
    DEFAULT_MAX_ROUNDS,
    ExecutionError,
    ExecutionResult,
    compiled_for,
    execute,
)

__all__ = [
    "DEFAULT_MAX_ROUNDS",
    "ExecutionError",
    "ExecutionResult",
    "run",
]


def run(
    algorithm: Algorithm,
    graph: Graph,
    numbering: PortNumbering | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    require_halt: bool = True,
    inputs: dict[Node, Any] | None = None,
) -> ExecutionResult:
    """Execute ``algorithm`` on ``(graph, numbering)`` until every node stops.

    Parameters
    ----------
    algorithm:
        The distributed algorithm; its :attr:`~repro.machines.algorithm.
        Algorithm.model` determines how messages are constructed and
        presented.
    graph:
        The input graph.
    numbering:
        The port numbering; defaults to the canonical consistent numbering.
    max_rounds:
        Upper bound on the number of communication rounds.
    record_trace:
        Whether to record a full :class:`~repro.execution.trace.Trace`.
    require_halt:
        If ``True`` (default), raise :class:`ExecutionError` when the bound is
        exceeded; otherwise return a result with ``halted=False``, the partial
        outputs of the nodes that did stop, and the final ``states`` of all
        nodes.
    inputs:
        Optional local inputs ``f(u)`` (Section 3.4, labelled graphs).  When
        given, the initial state of node ``u`` is
        ``algorithm.initial_state_with_input(deg(u), inputs.get(u))``.
    """
    return execute(
        algorithm,
        compiled_for(graph, numbering),
        max_rounds=max_rounds,
        record_trace=record_trace,
        require_halt=require_halt,
        inputs=inputs,
    )
