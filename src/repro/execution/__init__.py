"""Synchronous execution of distributed algorithms on port-numbered graphs.

* :mod:`~repro.execution.runner` -- the execution engine (Section 1.3): state
  vectors, synchronous rounds, stopping detection.
* :mod:`~repro.execution.trace` -- execution traces and message-size
  accounting used by the simulation-overhead experiments.
* :mod:`~repro.execution.adversary` -- adversarial execution over all (or
  sampled) port numberings of a graph.
"""

from repro.execution.runner import ExecutionError, ExecutionResult, run
from repro.execution.trace import Trace, message_size
from repro.execution.adversary import (
    outputs_over_port_numberings,
    port_numberings_to_check,
)

__all__ = [
    "ExecutionError",
    "ExecutionResult",
    "run",
    "Trace",
    "message_size",
    "outputs_over_port_numberings",
    "port_numberings_to_check",
]
