"""Synchronous execution of distributed algorithms on port-numbered graphs.

* :mod:`~repro.execution.engine` -- the compiled batch engine: flat-array
  instance compilation, the active-set round loop and the :func:`run_many`
  batch API.
* :mod:`~repro.execution.runner` -- the single-instance front door
  (Section 1.3): state vectors, synchronous rounds, stopping detection.
* :mod:`~repro.execution.legacy` -- the seed reference loop, kept as a
  differential-testing oracle and benchmark baseline.
* :mod:`~repro.execution.trace` -- execution traces and message-size
  accounting used by the simulation-overhead experiments.
* :mod:`~repro.execution.sweep` -- the superposed sweep executor: interned
  states/messages and one transition evaluation per distinct configuration
  across a whole batch of numberings of one topology.
* :mod:`~repro.execution.vector` -- the NumPy vector kernel: the sweep
  semantics as batched array passes over the interned configuration table
  (``engine="vector"``; optional dependency).
* :mod:`~repro.execution.adversary` -- adversarial execution over all (or
  sampled) port numberings of a graph.
"""

from repro.execution.engine import (
    CompiledInstance,
    ExecutionError,
    ExecutionResult,
    compile_instance,
    execute,
    run_iter,
    run_many,
)
from repro.execution.runner import run
from repro.execution.legacy import run_reference
from repro.execution.sweep import SweepStats, run_sweep
from repro.execution.trace import Trace, message_size
from repro.execution.vector import run_vector
from repro.execution.adversary import (
    AdversarialOutcome,
    outputs_over_port_numberings,
    port_numberings_to_check,
)

__all__ = [
    "AdversarialOutcome",
    "CompiledInstance",
    "ExecutionError",
    "ExecutionResult",
    "compile_instance",
    "execute",
    "run",
    "run_iter",
    "run_many",
    "run_reference",
    "run_sweep",
    "run_vector",
    "SweepStats",
    "Trace",
    "message_size",
    "outputs_over_port_numberings",
    "port_numberings_to_check",
]
