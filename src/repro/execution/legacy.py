"""The seed reference runner (Section 1.3), kept as an executable oracle.

This is the original, dictionary-based synchronous round loop that shipped
with the seed of this reproduction: every round it re-derives the port
topology through ``numbering.inverse``, rebuilds ``(node, port)``-keyed
message dictionaries and rescans all nodes for stopping states.  The compiled
engine (:mod:`repro.execution.engine`) replaces it on the hot path, but the
reference loop stays for two jobs:

* **differential testing** -- the engine must be node-for-node identical to
  this loop on every model and every input (see
  ``tests/test_execution_engine.py``), and
* **speedup benchmarking** -- ``benchmarks/run_all.py`` records the
  engine-vs-reference ratio on identical workloads in every ``BENCH_*.json``.

Do not optimize this module; its value is being the fixed baseline.
"""

from __future__ import annotations

from typing import Any

from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering, consistent_port_numbering
from repro.machines.algorithm import NO_MESSAGE, Algorithm
from repro.machines.models import SendMode
from repro.execution.engine import DEFAULT_MAX_ROUNDS, ExecutionError, ExecutionResult
from repro.execution.trace import Trace


def run_reference(
    algorithm: Algorithm,
    graph: Graph,
    numbering: PortNumbering | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    require_halt: bool = True,
    inputs: dict[Node, Any] | None = None,
) -> ExecutionResult:
    """Execute ``algorithm`` with the seed (uncompiled) round loop.

    Same contract as :func:`repro.execution.runner.run`.
    """
    if numbering is None:
        numbering = consistent_port_numbering(graph)
    elif numbering.graph != graph:
        raise ValueError("the port numbering belongs to a different graph")

    broadcast = algorithm.model.send is SendMode.BROADCAST
    if inputs is None:
        states: dict[Node, Any] = {
            node: algorithm.initial_state(graph.degree(node)) for node in graph.nodes
        }
    else:
        states = {
            node: algorithm.initial_state_with_input(graph.degree(node), inputs.get(node))
            for node in graph.nodes
        }
    trace = Trace() if record_trace else None
    if trace is not None:
        trace.state_history.append(dict(states))
        trace.received_messages.append({})

    rounds = 0
    while not all(algorithm.is_stopping(states[node]) for node in graph.nodes):
        if rounds >= max_rounds:
            if require_halt:
                raise ExecutionError(
                    f"{algorithm.name} did not halt on {graph!r} within {max_rounds} rounds"
                )
            partial = {
                node: algorithm.output(state)
                for node, state in states.items()
                if algorithm.is_stopping(state)
            }
            return ExecutionResult(
                outputs=partial, rounds=rounds, halted=False, trace=trace, states=dict(states)
            )
        rounds += 1

        # Message construction: what each node emits through each output port.
        outgoing: dict[tuple[Node, int], Any] = {}
        for node in graph.nodes:
            state = states[node]
            degree = graph.degree(node)
            if algorithm.is_stopping(state):
                for port in range(1, degree + 1):
                    outgoing[(node, port)] = NO_MESSAGE
            elif broadcast:
                message = algorithm.broadcast(state)
                for port in range(1, degree + 1):
                    outgoing[(node, port)] = message
            else:
                for port in range(1, degree + 1):
                    outgoing[(node, port)] = algorithm.send(state, port)

        # Message delivery: input port (u, i) receives from p^{-1}((u, i)).
        received: dict[tuple[Node, int], Any] = {}
        for node in graph.nodes:
            for in_port in range(1, graph.degree(node) + 1):
                source, out_port = numbering.inverse(node, in_port)
                received[(node, in_port)] = outgoing[(source, out_port)]

        # State transition on the model-specific projection of the received vector.
        new_states: dict[Node, Any] = {}
        for node in graph.nodes:
            state = states[node]
            if algorithm.is_stopping(state):
                new_states[node] = state
                continue
            vector = tuple(
                received[(node, in_port)] for in_port in range(1, graph.degree(node) + 1)
            )
            projected = algorithm.model.receive.project(vector)
            new_states[node] = algorithm.transition(state, projected)
        states = new_states

        if trace is not None:
            trace.state_history.append(dict(states))
            trace.received_messages.append(received)

    outputs = {node: algorithm.output(states[node]) for node in graph.nodes}
    return ExecutionResult(
        outputs=outputs, rounds=rounds, halted=True, trace=trace, states=dict(states)
    )
