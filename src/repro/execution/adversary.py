"""Adversarial execution over port numberings.

An algorithm *solves* a graph problem only if its output is valid for *every*
port numbering of the input graph (Section 1.4) -- the port numbering is
chosen by an adversary.  For small witness graphs the adversary can be
exhausted; for larger graphs it is sampled.  This module produces the set of
port numberings to check and collects the outputs an algorithm produces over
them.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.graphs.graph import Graph, Node
from repro.graphs.ports import (
    PortNumbering,
    all_port_numberings,
    consistent_port_numbering,
    count_port_numberings,
    random_port_numbering,
)
from repro.machines.algorithm import Algorithm
from repro.execution.runner import DEFAULT_MAX_ROUNDS, ExecutionResult
from repro.execution.sweep import run_sweep

#: If a graph has at most this many port numberings, enumerate them all.
DEFAULT_EXHAUSTIVE_LIMIT = 2_000


@dataclass(frozen=True)
class AdversarialOutcome:
    """One adversarial execution: the port numbering and what it produced.

    Unpacks as a ``(numbering, result)`` pair, so existing
    ``for numbering, result in ...`` loops keep working.
    """

    #: The port numbering the adversary chose.
    numbering: PortNumbering
    #: The execution of the algorithm under that numbering.
    result: ExecutionResult

    def __iter__(self) -> Iterator[Any]:
        return iter((self.numbering, self.result))


def port_numberings_to_check(
    graph: Graph,
    consistent_only: bool = False,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = 50,
    seed: int = 0,
) -> Iterator[PortNumbering]:
    """Port numberings an adversarial check should cover.

    If the total number of port numberings of ``graph`` does not exceed
    ``exhaustive_limit``, every port numbering is produced; otherwise the
    canonical consistent numbering plus ``samples`` pseudo-random numberings
    (seeded, hence reproducible) are produced.
    """
    total = count_port_numberings(graph, consistent_only=consistent_only)
    if total <= exhaustive_limit:
        yield from all_port_numberings(graph, consistent_only=consistent_only)
        return
    yield consistent_port_numbering(graph)
    rng = random.Random(seed)
    for _ in range(samples):
        yield random_port_numbering(graph, rng=rng, consistent=consistent_only)


def outputs_over_port_numberings(
    algorithm: Algorithm,
    graph: Graph,
    consistent_only: bool = False,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = 50,
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    engine: str = "sweep",
) -> list[AdversarialOutcome]:
    """Run ``algorithm`` on ``graph`` under every adversarial port numbering.

    Returns one :class:`AdversarialOutcome` per numbering produced by
    :func:`port_numberings_to_check` (each unpacks as a
    ``(numbering, result)`` pair).  The whole sweep executes through the
    superposed batch engine (:func:`repro.execution.sweep.run_sweep`) by
    default; ``engine`` selects the vectorized kernel, the per-instance
    compiled loop or the seed runner as oracles.
    """
    numberings = list(
        port_numberings_to_check(
            graph,
            consistent_only=consistent_only,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
            seed=seed,
        )
    )
    results = run_sweep(
        algorithm,
        [(graph, numbering) for numbering in numberings],
        max_rounds=max_rounds,
        engine=engine,
    )
    return [
        AdversarialOutcome(numbering=numbering, result=result)
        for numbering, result in zip(numberings, results)
    ]


def distinct_outputs(
    algorithm: Algorithm,
    graph: Graph,
    consistent_only: bool = False,
    **kwargs: Any,
) -> set[tuple[tuple[Node, Any], ...]]:
    """The set of distinct output assignments the adversary can force.

    Output vectors are keyed in the graph's deterministic node order (the
    same order every compiled instance uses), not by a ``repr`` sort of the
    nodes -- two assignments are equal exactly when they agree node-by-node.
    """
    outcomes = set()
    node_order = graph.nodes
    for _numbering, result in outputs_over_port_numberings(
        algorithm, graph, consistent_only=consistent_only, **kwargs
    ):
        outputs = result.outputs
        outcomes.add(tuple((node, outputs[node]) for node in node_order if node in outputs))
    return outcomes
