"""Superposed sweep execution: one transition per distinct configuration.

The paper's solvability notion (Section 1.4) quantifies over *every* port
numbering the adversary can choose, so verification sweeps execute one
algorithm over thousands of numberings of the same witness graph.  The
compiled engine (:mod:`repro.execution.engine`) already shares the graph
topology and the :class:`~repro.machines.fastpath.FastPathAlgorithm` caches
across such a batch, but it still works with the states and messages
*themselves*: every node-round hashes a state, a received vector and a
projected view, and for history-accumulating states those hashes are as large
as the objects.  Yet in an anonymous port-numbered network most nodes across
the instances of a sweep sit in *identical* local configurations -- the
structural collapse that makes the finite-state view of these models work in
the first place.

This module executes the whole sweep over one superposed id space:

* states and messages are interned into dense integer ids in
  :class:`SweepTables` (extending the fast-path caches into tables shared by
  every instance of the sweep and -- because the tables live on the
  :class:`~repro.machines.fastpath.FastPathAlgorithm` wrapper -- by every
  sweep of the same wrapped algorithm);
* per round, each active node's ``(state_id, inbox)`` configuration is
  interned into a global configuration table -- the inbox is a tuple of
  message ids, canonicalized per receive mode (sorted for Multiset, sorted
  and deduplicated for Set, sound because ids are in bijection with message
  values) -- and the algorithm's transition function is consulted **once per
  distinct configuration** across the entire sweep;
* outgoing messages are interned the same way: one ``(state_id, degree)``
  send row (or one broadcast id) per distinct state, scattered into the
  output buffer by C-level slice assignment instead of per-port calls;
* results are materialized from the id tables (``dict(zip(nodes, map(...)))``
  over dense ids, with a memo over repeated final configurations), so a
  2,000-numbering sweep of a 10-node witness does hundreds of transition
  evaluations per round -- not 20,000 -- and never hashes a state object
  twice.

Everything an instance does after the first one is therefore integer table
lookups; the algorithm's own ``send``/``transition``/``is_stopping`` code
runs only when a configuration is genuinely new.  The result is
node-for-node identical to the compiled engine and the seed reference
runner (``tests/test_sweep_engine.py`` checks all seven classes
differentially); both stay available as oracles through the ``engine`` knob
(``engine="compiled"`` / ``"reference"``).

Limits: traces are not recorded (callers that need a
:class:`~repro.execution.trace.Trace` fall back to the compiled engine), and
with ``require_halt=True`` a round-budget violation is reported only after
the rest of the sweep has run -- the same exception, for the first
non-halting instance in input order, just not raised mid-batch.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import chain
from typing import Any

from repro.graphs.graph import Node
from repro.machines.algorithm import NO_MESSAGE, Algorithm, Output
from repro.machines.fastpath import FastPathAlgorithm, fast_path
from repro.machines.models import ReceiveMode, SendMode
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span, tracing_enabled as _tracing
from repro.execution.engine import (
    DEFAULT_MAX_ROUNDS,
    CompiledInstance,
    ExecutionError,
    ExecutionResult,
    Instance,
    compile_instance,
)

__all__ = [
    "SweepStats",
    "SweepTables",
    "collapse_instances",
    "delivery_signature_of",
    "publish_stats",
    "run_sweep",
    "stats_values",
    "sweep_tables_for",
]

_MISSING = object()


def delivery_signature_of(model: Any, has_inputs: bool):
    """The instance-collapse signature function of a model, or ``None``.

    Instance-level superposition: the receive mode's information loss
    quotients the adversary's choices.  A node's dynamics depend on its
    delivery map only up to what the mode can observe -- under Multiset or
    Set receive the incoming port order is invisible (only the *sorted*
    source slots matter), and under broadcast send the senders' output
    ports are too (only the source nodes matter; with Multiset/Set receive
    on top, nothing of the numbering remains).  Instances that agree on
    that signature are execution-identical, so only one representative per
    signature needs to run; duplicates copy its result.  Exhaustive
    adversarial sweeps collapse by factorial factors this way (MB/SB
    collapse to a single execution), exactly mirroring how the paper's
    weak models forget port information.

    Returns ``None`` when no collapse is sound: per-instance inputs break
    instance equality, and Vector receive with port-addressed sending
    observes the full delivery map.  Shared by the superposed sweep engine
    and the NumPy vector kernel (:mod:`repro.execution.vector`).
    """
    broadcast = model.send is SendMode.BROADCAST
    vector_mode = model.receive is ReceiveMode.VECTOR
    if has_inputs:
        return None
    if broadcast:
        if vector_mode:
            return lambda ci: tuple(ci.source_nodes)
        return lambda ci: ()
    if not vector_mode:
        return lambda ci: tuple(tuple(sorted(slots)) for slots in ci.sources)
    return None


def collapse_instances(
    group: "list[CompiledInstance]", signature_of
) -> tuple[list[int], list[tuple[int, int]]]:
    """Split a shared-topology group into representatives and duplicates.

    Returns ``(executed, duplicates)``: the positions that must run the
    round loop, and ``(position, representative)`` pairs whose results are
    copies of their representative's.
    """
    duplicates: list[tuple[int, int]] = []
    if signature_of is None:
        return list(range(len(group))), duplicates
    representatives: dict[Any, int] = {}
    executed: list[int] = []
    for position, instance in enumerate(group):
        signature = signature_of(instance)
        representative = representatives.get(signature)
        if representative is None:
            representatives[signature] = position
            executed.append(position)
        else:
            duplicates.append((position, representative))
    return executed, duplicates


class _LazyRowTable(dict):
    """state_id -> outgoing-row table computing entries on first use.

    Backs the C-level buffer-rebuild send paths: ``map(table.__getitem__,
    state_row)`` stays a plain dict lookup per node, and ``__missing__``
    invokes the builder exactly once per state that actually appears in a
    rebuild at this shape -- never for states interned by other-degree
    groups sharing the same :class:`SweepTables`.
    """

    __slots__ = ("_build",)

    def __init__(self, build) -> None:
        super().__init__()
        self._build = build

    def __missing__(self, sid: int):
        row = self[sid] = self._build(sid)
        return row


@dataclass
class SweepStats:
    """Work accounting of one (or more) superposed sweeps.

    ``executed`` and ``replicated`` split the instances into
    delivery-signature representatives that ran the round loop and
    duplicates whose results were copied from their representative.
    ``occurrences`` counts the per-``(instance, node, round)`` steps the
    representatives walked, ``replicated_occurrences`` the steps the
    duplicates would have repeated (so :attr:`naive_occurrences` is the full
    per-instance-engine walk); ``evaluations`` counts how many steps
    actually reached the algorithm's transition function -- one per
    configuration the sweep had never seen before.
    ``distinct_states``/``distinct_messages`` count the values the accounted
    sweeps *newly* interned (zero on a warm re-sweep), so every field
    accumulates across calls sharing one stats object.
    """

    instances: int = 0
    executed: int = 0
    replicated: int = 0
    rounds: int = 0
    occurrences: int = 0
    replicated_occurrences: int = 0
    evaluations: int = 0
    distinct_states: int = 0
    distinct_messages: int = 0

    @property
    def naive_occurrences(self) -> int:
        """Node-rounds a per-instance engine would walk for the full sweep:
        the representatives' walks plus the walks the replicated duplicates
        would have repeated."""
        return self.occurrences + self.replicated_occurrences

    @property
    def dedup_ratio(self) -> float:
        """Naive transitions per actual transition evaluation (both levels
        of superposition: configuration dedup and instance collapse).  A
        fully-warm sweep (zero evaluations) reports its whole naive walk as
        deduplicated, not 1.0."""
        if self.evaluations:
            return self.naive_occurrences / self.evaluations
        return float(self.naive_occurrences) if self.naive_occurrences else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "instances": self.instances,
            "executed": self.executed,
            "replicated": self.replicated,
            "rounds": self.rounds,
            "occurrences": self.occurrences,
            "naive_occurrences": self.naive_occurrences,
            "evaluations": self.evaluations,
            "distinct_states": self.distinct_states,
            "distinct_messages": self.distinct_messages,
            "dedup_ratio": round(self.dedup_ratio, 2),
        }


_STATS_FIELDS = (
    "instances",
    "executed",
    "replicated",
    "rounds",
    "occurrences",
    "replicated_occurrences",
    "evaluations",
    "distinct_states",
    "distinct_messages",
)


def stats_values(stats: SweepStats) -> tuple[int, ...]:
    """Raw field vector of a stats object (for before/after delta capture)."""
    return tuple(getattr(stats, field) for field in _STATS_FIELDS)


def publish_stats(prefix: str, stats: SweepStats, before: tuple[int, ...], sp) -> None:
    """Publish the per-call delta of an accumulated stats object.

    ``SweepStats`` remains the caller-facing compatibility view; this folds
    the same numbers into the process-wide registry as ``{prefix}.*``
    counters and attaches the headline figures to the enclosing span.
    """
    deltas = {
        field: value - prior
        for field, value, prior in zip(_STATS_FIELDS, stats_values(stats), before)
    }
    if _metrics.enabled():
        for field, delta in deltas.items():
            if delta:
                _metrics.counter(f"{prefix}.{field}").inc(delta)
    naive = deltas["occurrences"] + deltas["replicated_occurrences"]
    sp.set(
        instances=deltas["instances"],
        executed=deltas["executed"],
        evaluations=deltas["evaluations"],
        naive_occurrences=naive,
        distinct_states=deltas["distinct_states"],
    )


class SweepTables:
    """Dense-id interning tables shared across the sweeps of one algorithm.

    * ``state_values[state_ids[z]] is z`` -- states to dense ids and back,
      with the stopping flag pre-computed per id in ``state_stops`` and the
      local output of a stopping state memoized in ``state_outputs``;
    * ``msg_values[msg_ids[m]] is m`` -- messages to dense ids (id 0 is the
      paper's ``m0``);
    * ``configs[(state_id, inbox_key)] -> (new_state_id, stopped)`` -- the
      global configuration table: the transition function is consulted once
      per key, ever;
    * ``send_rows[(state_id, degree)]`` and the per-shape ``rebuild_rows``
      tables -- the interned outgoing-message row of a state, computed once
      per state (and degree, for port-addressed sending);
    * ``initial_rows[degree] -> state_id`` -- interned ``z0``.

    Sharing the tables is sound for exactly the reason transition
    memoization is (see :mod:`repro.machines.fastpath`): the paper defines
    algorithms as deterministic state machines (Section 1.1), so a
    configuration determines its successor.  The tables live on the
    :class:`~repro.machines.fastpath.FastPathAlgorithm` wrapper; pass the
    same wrapper to successive sweeps to amortize them across calls.
    """

    __slots__ = (
        "state_ids",
        "state_values",
        "state_stops",
        "state_outputs",
        "msg_ids",
        "msg_values",
        "configs",
        "send_rows",
        "initial_rows",
        "rebuild_rows",
    )

    def __init__(self) -> None:
        self.state_ids: dict[Any, int] = {}
        self.state_values: list[Any] = []
        self.state_stops: list[bool] = []
        self.state_outputs: list[Any] = []
        self.msg_ids: dict[Any, int] = {NO_MESSAGE: 0}
        self.msg_values: list[Any] = [NO_MESSAGE]
        self.configs: dict[tuple[int, tuple[int, ...]], tuple[int, bool]] = {}
        self.send_rows: dict[tuple[int, int], tuple[int, ...]] = {}
        self.initial_rows: dict[int, int] = {}
        # state_id-indexed outgoing rows for the C-level buffer-rebuild send
        # paths, one lazy table per shape key ("b" for broadcast, degree for
        # port-addressed regular topologies); see ``_sweep_group``.
        self.rebuild_rows: dict[Any, "_LazyRowTable"] = {}

    def clear(self) -> None:
        self.__init__()


def sweep_tables_for(fast: FastPathAlgorithm) -> SweepTables:
    """The sweep tables of a fast-path wrapper, created on first use."""
    tables = fast.sweep_tables
    if tables is None:
        tables = SweepTables()
        fast.sweep_tables = tables
    return tables


def run_sweep(
    algorithm: Algorithm | FastPathAlgorithm,
    instances: Iterable[Instance],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    require_halt: bool = True,
    inputs: Sequence[dict[Node, Any] | None] | None = None,
    workers: int | None = None,
    engine: str = "sweep",
    stats: SweepStats | None = None,
) -> list[ExecutionResult]:
    """Run one algorithm over a sweep of instances, superposed.

    Parameters are as in :func:`repro.execution.engine.run_many`; results are
    returned in input order and are node-for-node identical to the compiled
    engine's.  Instances are grouped by their shared compiled topology, so a
    sweep may mix graphs (each group still executes over the same global
    interning tables, which is where the cross-instance deduplication lives).

    ``engine`` keeps the other backends available as differential oracles:
    ``"compiled"`` routes the batch through the compiled active-set loop,
    ``"reference"`` through the seed runner, ``"vector"`` through the NumPy
    kernel (:mod:`repro.execution.vector`); the default ``"sweep"`` executes
    superposed.  The knob resolves through the engine registry
    (:func:`repro.engines.resolve_engine`), so unknown names and capability
    mismatches are diagnosed there.  ``workers`` matches the unified batch
    signature: the superposed and vector paths always run in-process (a
    process split would partition the interning arena and forfeit
    cross-instance deduplication), and the per-instance oracles forward it
    to :func:`~repro.execution.engine.run_many`.  ``stats``, when given,
    accumulates a :class:`SweepStats` work account (superposed and vector
    paths only).
    """
    from repro.engines.registry import resolve_engine

    spec = resolve_engine(engine, requires={"sweep"}, operation="run_sweep")
    if spec.name == "vector":
        from repro.execution.vector import run_vector

        return run_vector(
            algorithm,
            instances,
            max_rounds=max_rounds,
            require_halt=require_halt,
            inputs=inputs,
            stats=stats,
        )
    if spec.name in ("compiled", "reference"):
        from repro.execution.engine import run_many

        return run_many(
            algorithm,
            instances,
            max_rounds=max_rounds,
            require_halt=require_halt,
            inputs=inputs,
            workers=workers,
            engine=engine,
            memoize_transitions=True,
        )

    compiled = [compile_instance(item) for item in instances]
    if inputs is None:
        per_inputs: list[dict[Node, Any] | None] = [None] * len(compiled)
    else:
        per_inputs = list(inputs)
        if len(per_inputs) != len(compiled):
            raise ValueError(
                f"inputs has {len(per_inputs)} entries for {len(compiled)} instances"
            )

    fast = fast_path(algorithm)
    tables = sweep_tables_for(fast)
    # With telemetry on, the registry gets the same work account the stats
    # object accumulates -- allocate one if the caller did not ask for it.
    observing = _metrics.enabled() or _tracing()
    if observing and stats is None:
        stats = SweepStats()
    before = stats_values(stats) if stats is not None else None
    states_before = len(tables.state_values)
    messages_before = len(tables.msg_values)
    results: list[ExecutionResult | None] = [None] * len(compiled)

    # Group by shared topology (identity of the numbering-independent
    # compiled graph, kept alive by the instances themselves): one initial
    # configuration and one getter family per group.
    groups: dict[int, list[int]] = {}
    for index, instance in enumerate(compiled):
        groups.setdefault(id(instance.topology), []).append(index)
    with _span("engine.sweep.run", engine="sweep") as sp:
        for indices in groups.values():
            _sweep_group(
                fast,
                tables,
                [compiled[i] for i in indices],
                indices,
                max_rounds,
                [per_inputs[i] for i in indices],
                results,
                stats,
            )
        if stats is not None:
            stats.instances += len(compiled)
            stats.distinct_states += len(tables.state_values) - states_before
            stats.distinct_messages += len(tables.msg_values) - messages_before
            if observing:
                publish_stats("sweep", stats, before, sp)
    if require_halt:
        for index, result in enumerate(results):
            if result is not None and not result.halted:
                raise ExecutionError(
                    f"{fast.inner.name} did not halt on {compiled[index].graph!r} "
                    f"within {max_rounds} rounds"
                )
    return results  # type: ignore[return-value]


def _sweep_group(
    fast: FastPathAlgorithm,
    tables: SweepTables,
    group: list[CompiledInstance],
    indices: list[int],
    max_rounds: int,
    group_inputs: list[dict[Node, Any] | None],
    results: list[ExecutionResult | None],
    stats: SweepStats | None,
) -> None:
    """Execute one shared-topology group superposed; fill ``results``.

    Instances run through the round loop one after another, but entirely in
    the sweep's dense id space: all per-round work is integer table lookups
    unless a configuration (or state, or send row) is genuinely new, in which
    case the algorithm is consulted once and the answer interned for every
    later occurrence -- in this instance, the rest of the sweep, and any
    later sweep sharing the tables.
    """
    inner = fast.inner
    topology = group[0].topology
    nodes = topology.nodes
    n = len(nodes)
    num_ports = topology.num_ports
    degrees = topology.degrees
    offsets = topology.offsets
    broadcast = inner.model.send is SendMode.BROADCAST
    receive = inner.model.receive
    vector_mode = receive is ReceiveMode.VECTOR
    set_mode = receive is ReceiveMode.SET
    project = receive.project
    transition = inner.transition
    send = inner.send
    broadcast_rule = inner.broadcast
    cls = type(inner)
    default_protocol = (
        cls.is_stopping is Algorithm.is_stopping and cls.output is Algorithm.output
    )
    is_stopping = inner.is_stopping

    state_ids = tables.state_ids
    state_values = tables.state_values
    state_stops = tables.state_stops
    state_outputs = tables.state_outputs
    msg_ids = tables.msg_ids
    msg_values = tables.msg_values
    configs = tables.configs
    send_rows = tables.send_rows
    configs_get = configs.get
    rows_get = send_rows.get

    def intern_state(state: Any) -> int:
        sid = state_ids.get(state)
        if sid is None:
            sid = state_ids[state] = len(state_values)
            state_values.append(state)
            if default_protocol:
                state_stops.append(isinstance(state, Output))
            else:
                state_stops.append(is_stopping(state))
            state_outputs.append(_MISSING)
        return sid

    def intern_msg(message: Any) -> int:
        mid = msg_ids.get(message)
        if mid is None:
            mid = msg_ids[message] = len(msg_values)
            msg_values.append(message)
        return mid

    def output_of(sid: int) -> Any:
        value = state_outputs[sid]
        if value is _MISSING:
            state = state_values[sid]
            value = state.value if default_protocol else inner.output(state)
            state_outputs[sid] = value
        return value

    # The shared initial configuration (inputs may specialize it per instance).
    initial_rows = tables.initial_rows
    init_row: list[int] = []
    for i in range(n):
        sid = initial_rows.get(degrees[i])
        if sid is None:
            sid = initial_rows[degrees[i]] = intern_state(
                inner.initial_state(degrees[i])
            )
        init_row.append(sid)
    init_active = [i for i in range(n) if not state_stops[init_row[i]]]
    m0_rows = {d: (0,) * d for d in set(degrees)}

    # When every node emits one buffer entry of uniform shape -- broadcast
    # mode, or port-addressed sending on a regular topology -- the send phase
    # collapses to one C-level rebuild of the output buffer from a
    # state_id-indexed row table (stopped states map to m0 rows, so halted
    # nodes park m0 implicitly).  The table is a dict whose ``__missing__``
    # computes a state's row on its first appearance in a rebuild, so ``mu``
    # is only ever consulted for states that actually send at this shape --
    # states interned by other-degree groups sharing the tables are never
    # touched.  One table per shape key ("b" for broadcast, the degree for
    # port-addressed), shared across groups and sweeps via
    # ``tables.rebuild_rows``.
    regular = len(m0_rows) == 1 and n > 0
    rebuild_send = broadcast or regular
    uniform_degree = degrees[0] if regular else 0
    if rebuild_send:
        shape_key = "b" if broadcast else uniform_degree
        row_of = tables.rebuild_rows.get(shape_key)
        if row_of is None or row_of._build is None:
            # ``_build is None`` marks a plan-installed table
            # (:func:`repro.execution.plan.install_plan` ships the row dicts
            # but not the process-local builder closure); rebind it here so
            # warm entries survive and misses fall through to ``mu``.
            if broadcast:
                build = (
                    lambda sid: 0
                    if state_stops[sid]
                    else intern_msg(broadcast_rule(state_values[sid]))
                )
            else:
                m0_row = m0_rows[uniform_degree]
                build = (
                    lambda sid: m0_row
                    if state_stops[sid]
                    else tuple(
                        intern_msg(send(state_values[sid], q + 1))
                        for q in range(uniform_degree)
                    )
                )
            if row_of is None:
                row_of = tables.rebuild_rows[shape_key] = _LazyRowTable(build)
            else:
                row_of._build = build
        row_of_get = row_of.__getitem__
    else:
        row_of_get = None

    # Sweeps revisit the same handful of final configurations over and over;
    # materialize the result dictionaries once per distinct one.
    result_memo: dict[tuple, tuple[dict, dict]] = {}

    occurrences = 0
    replicated_occurrences = 0
    evaluations = 0
    total_rounds = 0
    walk_of: dict[int, int] = {}  # representative position -> node-rounds walked

    def evaluate(cfg: tuple[int, tuple[int, ...]]) -> tuple[int, bool]:
        """Consult the algorithm for a configuration seen for the first time."""
        vector = tuple(map(msg_values.__getitem__, cfg[1]))
        new_state = transition(
            state_values[cfg[0]], vector if vector_mode else project(vector)
        )
        nsid = intern_state(new_state)
        entry = configs[cfg] = (nsid, state_stops[nsid])
        return entry

    # Instance-level superposition (see :func:`delivery_signature_of`): only
    # one representative per delivery signature runs the round loop;
    # duplicates copy its result.
    signature_of = delivery_signature_of(
        inner.model, any(item is not None for item in group_inputs)
    )
    executed, duplicates = collapse_instances(group, signature_of)

    for position in executed:
        instance = group[position]
        item_inputs = group_inputs[position]
        if item_inputs is None:
            state_row = list(init_row)
            active = list(init_active)
        else:
            state_row = [
                intern_state(
                    inner.initial_state_with_input(degrees[i], item_inputs.get(nodes[i]))
                )
                for i in range(n)
            ]
            active = [i for i in range(n) if not state_stops[state_row[i]]]
        getters = instance.node_getters if broadcast else instance.port_getters
        out = [0] * (n if broadcast else num_ports)

        rounds = 0
        walked = 0
        while active and rounds < max_rounds:
            rounds += 1
            walked += len(active)

            # Send phase: one interned row per distinct state, written either
            # by one C-level buffer rebuild (broadcast / regular topologies;
            # stopped states carry m0 rows, so halted nodes park m0
            # implicitly) or by per-node slice scatter (irregular degrees).
            if broadcast:
                out = list(map(row_of_get, state_row))
            elif regular:
                out = list(chain.from_iterable(map(row_of_get, state_row)))
            else:
                for i in active:
                    sid = state_row[i]
                    d = degrees[i]
                    row = rows_get((sid, d))
                    if row is None:
                        state = state_values[sid]
                        row = send_rows[(sid, d)] = tuple(
                            intern_msg(send(state, q + 1)) for q in range(d)
                        )
                    base = offsets[i]
                    out[base : base + d] = row

            # Receive + transition phase, specialized per receive mode.  The
            # output buffer is frozen for the round (m0 parking happens after
            # every gather), exactly as in the compiled engine.
            still_active: list[int] = []
            newly_stopped: list[int] = []
            if vector_mode:
                for i in active:
                    cfg = (state_row[i], getters[i](out))
                    entry = configs_get(cfg)
                    if entry is None:
                        evaluations += 1
                        entry = evaluate(cfg)
                    state_row[i] = entry[0]
                    if entry[1]:
                        newly_stopped.append(i)
                    else:
                        still_active.append(i)
            elif set_mode:
                for i in active:
                    cfg = (state_row[i], tuple(sorted(set(getters[i](out)))))
                    entry = configs_get(cfg)
                    if entry is None:
                        evaluations += 1
                        entry = evaluate(cfg)
                    state_row[i] = entry[0]
                    if entry[1]:
                        newly_stopped.append(i)
                    else:
                        still_active.append(i)
            else:
                for i in active:
                    cfg = (state_row[i], tuple(sorted(getters[i](out))))
                    entry = configs_get(cfg)
                    if entry is None:
                        evaluations += 1
                        entry = evaluate(cfg)
                    state_row[i] = entry[0]
                    if entry[1]:
                        newly_stopped.append(i)
                    else:
                        still_active.append(i)
            if not rebuild_send:
                # The rebuild paths derive m0 parking from the state row; the
                # scatter path writes it once per newly-halted node.
                for i in newly_stopped:
                    base = offsets[i]
                    out[base : base + degrees[i]] = m0_rows[degrees[i]]
            active = still_active
        total_rounds += rounds
        occurrences += walked
        walk_of[position] = walked

        halted = not active
        memo_key = (halted, rounds, tuple(state_row))
        memoized = result_memo.get(memo_key)
        if memoized is None:
            final_states = dict(zip(nodes, map(state_values.__getitem__, state_row)))
            if halted:
                outputs = dict(zip(nodes, map(output_of, state_row)))
            else:
                outputs = {
                    nodes[i]: output_of(sid)
                    for i, sid in enumerate(state_row)
                    if state_stops[sid]
                }
            memoized = result_memo[memo_key] = (outputs, final_states)
        results[indices[position]] = ExecutionResult(
            outputs=memoized[0].copy(),
            rounds=rounds,
            halted=halted,
            trace=None,
            states=memoized[1].copy(),
        )

    for position, representative in duplicates:
        original = results[indices[representative]]
        replicated_occurrences += walk_of[representative]
        results[indices[position]] = ExecutionResult(
            outputs=original.outputs.copy(),
            rounds=original.rounds,
            halted=original.halted,
            trace=None,
            states=dict(original.states) if original.states is not None else None,
        )

    if stats is not None:
        stats.executed += len(executed)
        stats.replicated += len(duplicates)
        stats.rounds += total_rounds
        stats.occurrences += occurrences
        stats.replicated_occurrences += replicated_occurrences
        stats.evaluations += evaluations
