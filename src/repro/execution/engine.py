"""Compiled batch execution engine.

The reference runner of Section 1.3 (:mod:`repro.execution.legacy`) re-derives
the port topology from ``(graph, numbering)`` on every round: each message
delivery calls ``numbering.inverse`` (a linear scan over a neighbour tuple),
each round rebuilds dictionaries keyed by ``(node, port)`` tuples, and the
stopping condition rescans every node.  Experiment sweeps -- hierarchy
verification, separation certificates, bisimulation-invariance surveys -- run
thousands of executions over the same graphs, so that bookkeeping dominates
the actual algorithm work.

This module compiles an instance once and runs the synchronous rounds over
flat index arrays:

* :class:`CompiledInstance` pre-computes node-indexed degrees, CSR-style port
  offsets and an inverse-port delivery map (for every input port, the flat
  index of the output buffer slot that feeds it), so the per-round loop does
  zero dictionary lookups on topology;
* :func:`execute` runs an algorithm over a compiled instance with an
  *active-set scheduler*: only non-stopped nodes construct messages and take
  transitions, and a node that halts parks ``m0`` in its output slots exactly
  once (halted nodes keep sending ``m0`` forever, as in the paper);
* :func:`run_many` is the batch API for experiment sweeps: it runs one
  algorithm over many instances, sharing the compiled topology and the
  :class:`~repro.machines.fastpath.FastPathAlgorithm` projection cache across
  the batch, optionally fanning the batch out over ``multiprocessing``
  workers.

Per-graph topology (everything that does not depend on the port numbering) is
cached in a :class:`weakref.WeakKeyDictionary`, so adversarial sweeps that
enumerate thousands of numberings of one witness graph compile the graph part
only once.
"""

from __future__ import annotations

import multiprocessing
import weakref
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import partial
from operator import itemgetter
from typing import Any, Union

from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering, consistent_port_numbering
from repro.machines.algorithm import NO_MESSAGE, Algorithm, Output
from repro.machines.fastpath import FastPathAlgorithm, fast_path
from repro.machines.models import SendMode
from repro.execution.trace import Trace

#: Default bound on the number of rounds before the engine gives up.
DEFAULT_MAX_ROUNDS = 10_000


class ExecutionError(RuntimeError):
    """Raised when an execution does not halt within the round budget."""


@dataclass
class ExecutionResult:
    """The outcome of running an algorithm on ``(G, p)``.

    Attributes
    ----------
    outputs:
        The local output ``S(v)`` of every node that reached a stopping state.
        When ``halted`` is true this is the full solution ``S`` of Section
        1.4; when the round budget was exhausted it contains the *partial*
        outputs of the nodes that did stop (possibly none).
    rounds:
        The time ``T`` at which the last node stopped (or the round budget).
    halted:
        Whether every node reached a stopping state within the round budget.
    trace:
        The full execution trace, if recording was requested.
    states:
        The final state of every node, including non-stopped ones.  This is
        what makes non-halting runs inspectable: ``states`` always reflects
        the configuration at time ``rounds``.
    """

    outputs: dict[Node, Any]
    rounds: int
    halted: bool
    trace: Trace | None = None
    states: dict[Node, Any] | None = None

    def output_vector(self) -> dict[Node, Any]:
        """Alias for :attr:`outputs` (the solution ``S`` of Section 1.4)."""
        return self.outputs


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #


class _CompiledGraph:
    """The numbering-independent part of a compiled instance.

    ``offsets`` is the CSR-style prefix-sum of degrees over the deterministic
    node order: the ports of node ``i`` occupy the flat slots
    ``offsets[i] .. offsets[i] + degrees[i] - 1``.
    """

    __slots__ = ("nodes", "index", "degrees", "offsets", "num_ports")

    def __init__(self, graph: Graph) -> None:
        nodes = graph.nodes
        self.nodes: tuple[Node, ...] = nodes
        self.index: dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        self.degrees: list[int] = [graph.degree(node) for node in nodes]
        offsets = [0] * (len(nodes) + 1)
        total = 0
        for i, degree in enumerate(self.degrees):
            offsets[i] = total
            total += degree
        offsets[len(nodes)] = total
        self.offsets: list[int] = offsets
        self.num_ports: int = total


_COMPILED_GRAPHS: "weakref.WeakKeyDictionary[Graph, _CompiledGraph]" = (
    weakref.WeakKeyDictionary()
)


def _empty_gather(buffer: list[Any]) -> tuple[Any, ...]:
    return ()


def _single_gather(slot: int, buffer: list[Any]) -> tuple[Any, ...]:
    return (buffer[slot],)


def _make_getter(slots: tuple[int, ...]) -> Any:
    """A picklable callable mapping the flat output buffer to a received vector."""
    if not slots:
        return _empty_gather
    if len(slots) == 1:
        return partial(_single_gather, slots[0])
    return itemgetter(*slots)


def _compiled_graph(graph: Graph) -> _CompiledGraph:
    try:
        compiled = _COMPILED_GRAPHS.get(graph)
        if compiled is None:
            compiled = _COMPILED_GRAPHS[graph] = _CompiledGraph(graph)
        return compiled
    except TypeError:  # not weak-referenceable; compile without caching
        return _CompiledGraph(graph)


class CompiledInstance:
    """``(graph, numbering)`` compiled to flat index arrays.

    For every node ``i`` (in the graph's deterministic node order):

    * ``sources[i][j]`` is the flat *output-buffer* slot whose message arrives
      at input port ``j + 1`` of node ``i`` under port-addressed sending
      (i.e. the compiled form of ``p^{-1}((v, j + 1))``), and
    * ``source_nodes[i][j]`` is the index of the sending node, which is all
      broadcast-mode delivery needs (one buffer slot per node).

    The per-round loop therefore delivers messages by plain list indexing --
    no ``numbering.inverse``, no ``(node, port)`` dictionary keys.
    """

    __slots__ = (
        "graph",
        "numbering",
        "topology",
        "sources",
        "source_nodes",
        "port_getters",
        "node_getters",
    )

    def __init__(self, graph: Graph, numbering: PortNumbering | None = None) -> None:
        if numbering is None:
            numbering = consistent_port_numbering(graph)
        elif numbering.graph != graph:
            raise ValueError("the port numbering belongs to a different graph")
        self.graph = graph
        self.numbering = numbering
        topology = _compiled_graph(graph)
        self.topology = topology

        index = topology.index
        offsets = topology.offsets
        outgoing = numbering.outgoing_assignment()
        incoming = numbering.incoming_assignment()
        # Invert the outgoing assignment once: out_port_of[v][u] is the
        # 0-based output port of v that leads to u.
        out_port_of = {
            node: {neighbour: q for q, neighbour in enumerate(ports)}
            for node, ports in outgoing.items()
        }
        sources: list[tuple[int, ...]] = []
        source_nodes: list[tuple[int, ...]] = []
        for node in topology.nodes:
            slots: list[int] = []
            senders: list[int] = []
            for neighbour in incoming[node]:
                sender = index[neighbour]
                slots.append(offsets[sender] + out_port_of[neighbour][node])
                senders.append(sender)
            sources.append(tuple(slots))
            source_nodes.append(tuple(senders))
        self.sources = sources
        self.source_nodes = source_nodes
        # C-level gather: one itemgetter per node turns the output buffer
        # into that node's received vector without a Python-level loop.
        self.port_getters = [_make_getter(slots) for slots in sources]
        self.node_getters = [_make_getter(senders) for senders in source_nodes]

    @property
    def number_of_nodes(self) -> int:
        return len(self.topology.nodes)

    @property
    def number_of_ports(self) -> int:
        return self.topology.num_ports

    def __repr__(self) -> str:
        return (
            f"CompiledInstance(nodes={self.number_of_nodes}, "
            f"ports={self.number_of_ports})"
        )


#: Anything :func:`run_many` accepts as one instance of a batch.
Instance = Union[Graph, "tuple[Graph, PortNumbering | None]", CompiledInstance]

def compiled_for(graph: Graph, numbering: PortNumbering | None = None) -> CompiledInstance:
    """A compiled instance for ``(graph, numbering)``, cached when possible.

    An explicit numbering carries its compiled form in a private slot (see
    :class:`~repro.graphs.ports.PortNumbering`), so repeated executions under
    one numbering -- e.g. a simulation run plus the reference run its output
    is checked against -- compile once.  With ``numbering=None`` the compiled
    canonical instance is cached on the graph itself (repeated
    ``run(algorithm, graph)`` calls skip both the numbering construction and
    the compilation); both caches live exactly as long as their owner object.
    """
    if numbering is not None:
        compiled = numbering._compiled_instance
        if compiled is not None and (compiled.graph is graph or compiled.graph == graph):
            return compiled
        compiled = CompiledInstance(graph, numbering)
        numbering._compiled_instance = compiled
        return compiled
    compiled = graph._default_compiled
    if compiled is None:
        compiled = graph._default_compiled = CompiledInstance(graph)
    return compiled


def compile_instance(instance: Instance) -> CompiledInstance:
    """Normalize a batch item to a :class:`CompiledInstance`."""
    if isinstance(instance, CompiledInstance):
        return instance
    if isinstance(instance, Graph):
        return compiled_for(instance)
    graph, numbering = instance
    return compiled_for(graph, numbering)


# --------------------------------------------------------------------------- #
# The compiled round loop
# --------------------------------------------------------------------------- #


def execute(
    algorithm: Algorithm | FastPathAlgorithm,
    compiled: CompiledInstance,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    require_halt: bool = True,
    inputs: dict[Node, Any] | None = None,
) -> ExecutionResult:
    """Execute ``algorithm`` on a compiled instance until every node stops.

    Semantically identical to the reference runner (same outputs, rounds,
    halting behaviour and trace contents); see
    :func:`repro.execution.runner.run` for the parameter documentation.
    """
    fast = fast_path(algorithm)
    inner = fast.inner
    topology = compiled.topology
    nodes = topology.nodes
    n = len(nodes)
    degrees = topology.degrees
    offsets = topology.offsets
    is_stopping = inner.is_stopping
    transition = inner.transition
    broadcast = inner.model.send is SendMode.BROADCAST
    # The wrapper's caches are inlined into the round loop below -- no
    # per-call method dispatch on the hot path.  Vector receive keeps the raw
    # tuple (identity projection), so no projection cache is consulted.
    identity_projection = fast.projects_identity
    projection_cache = fast.projection_cache
    project = inner.model.receive.project
    memoize = fast.memoizes_transitions
    send_cache = fast.send_cache if memoize else None
    transition_cache = fast.transition_cache if memoize else None
    # Algorithms that keep the default halting protocol (state is stopping
    # iff it is an Output) get the check inlined as an isinstance test.
    cls = type(inner)
    default_protocol = (
        cls.is_stopping is Algorithm.is_stopping and cls.output is Algorithm.output
    )

    if inputs is None:
        initial = fast.initial_state if memoize else inner.initial_state
        states: list[Any] = [initial(degrees[i]) for i in range(n)]
    else:
        states = [
            inner.initial_state_with_input(degrees[i], inputs.get(nodes[i]))
            for i in range(n)
        ]

    trace = Trace() if record_trace else None
    if trace is not None:
        trace.state_history.append(dict(zip(nodes, states)))
        trace.received_messages.append({})

    if default_protocol:
        active = [i for i in range(n) if not isinstance(states[i], Output)]
    else:
        active = [i for i in range(n) if not is_stopping(states[i])]
    # One output slot per port (port-addressed) or per node (broadcast).
    # Slots of halted (or initially-halted) nodes stay at m0 forever.
    out: list[Any] = [NO_MESSAGE] * (n if broadcast else topology.num_ports)
    gather = compiled.source_nodes if broadcast else compiled.sources
    gatherers = compiled.node_getters if broadcast else compiled.port_getters

    rounds = 0
    while active:
        if rounds >= max_rounds:
            if require_halt:
                raise ExecutionError(
                    f"{inner.name} did not halt on {compiled.graph!r} "
                    f"within {max_rounds} rounds"
                )
            return _finish(inner, nodes, states, rounds, False, trace, default_protocol)
        rounds += 1

        # Send phase: only active nodes construct messages.
        if broadcast:
            broadcast_rule = inner.broadcast
            if send_cache is None:
                for i in active:
                    out[i] = broadcast_rule(states[i])
            else:
                for i in active:
                    state = states[i]
                    try:
                        message = send_cache[state]
                    except KeyError:
                        message = send_cache[state] = broadcast_rule(state)
                    out[i] = message
        else:
            send = inner.send
            if send_cache is None:
                for i in active:
                    state = states[i]
                    base = offsets[i]
                    for q in range(degrees[i]):
                        out[base + q] = send(state, q + 1)
            else:
                for i in active:
                    state = states[i]
                    base = offsets[i]
                    for q in range(degrees[i]):
                        key = (state, q + 1)
                        try:
                            message = send_cache[key]
                        except KeyError:
                            message = send_cache[key] = send(state, q + 1)
                        out[base + q] = message

        if trace is not None:
            received: dict[tuple[Node, int], Any] = {}
            for i in range(n):
                node = nodes[i]
                for j, slot in enumerate(gather[i]):
                    received[(node, j + 1)] = out[slot]
            trace.received_messages.append(received)

        # Receive + transition phase.  The output buffer is frozen for the
        # round (newly-halted nodes only park m0 *after* every gather), so
        # states can be updated in place without breaking the synchronous
        # semantics.
        still_active: list[int] = []
        newly_stopped: list[int] = []
        for i in active:
            vector = gatherers[i](out)
            if identity_projection:
                projected = vector
            else:
                try:
                    projected = projection_cache[vector]
                except KeyError:
                    projected = projection_cache[vector] = project(vector)
            if transition_cache is None:
                new_state = transition(states[i], projected)
            else:
                key = (states[i], projected)
                try:
                    new_state = transition_cache[key]
                except KeyError:
                    new_state = transition_cache[key] = transition(*key)
            states[i] = new_state
            if default_protocol:
                stopped = isinstance(new_state, Output)
            else:
                stopped = is_stopping(new_state)
            if stopped:
                newly_stopped.append(i)
            else:
                still_active.append(i)
        for i in newly_stopped:
            if broadcast:
                out[i] = NO_MESSAGE
            else:
                base = offsets[i]
                for q in range(degrees[i]):
                    out[base + q] = NO_MESSAGE
        active = still_active

        if trace is not None:
            trace.state_history.append(dict(zip(nodes, states)))

    return _finish(inner, nodes, states, rounds, True, trace, default_protocol)


def _finish(
    algorithm: Algorithm,
    nodes: tuple[Node, ...],
    states: list[Any],
    rounds: int,
    halted: bool,
    trace: Trace | None,
    default_protocol: bool,
) -> ExecutionResult:
    if default_protocol:
        if halted:
            outputs = {nodes[i]: states[i].value for i in range(len(nodes))}
        else:
            outputs = {
                nodes[i]: states[i].value
                for i in range(len(nodes))
                if isinstance(states[i], Output)
            }
    else:
        output = algorithm.output
        is_stopping = algorithm.is_stopping
        if halted:
            outputs = {nodes[i]: output(states[i]) for i in range(len(nodes))}
        else:
            outputs = {
                nodes[i]: output(states[i])
                for i in range(len(nodes))
                if is_stopping(states[i])
            }
    return ExecutionResult(
        outputs=outputs,
        rounds=rounds,
        halted=halted,
        trace=trace,
        states=dict(zip(nodes, states)),
    )


# --------------------------------------------------------------------------- #
# Batch API
# --------------------------------------------------------------------------- #

from repro.engines.registry import (  # noqa: E402  (re-exported knob helpers)
    engine_names,
    logic_engine_for,
    resolve_engine,
)

#: Engine backends selectable by benchmarks and A/B tests, in registry order.
#: ``"sweep"`` is the superposed batch executor of
#: :mod:`repro.execution.sweep` (identical results, one transition
#: evaluation per distinct configuration across the whole batch) and
#: ``"vector"`` its NumPy array twin (:mod:`repro.execution.vector`).
#: Resolution, capability checks and availability probes all live in
#: :mod:`repro.engines.registry`.
ENGINES = engine_names(requires={"sweep"})


def _run_one(
    fast: FastPathAlgorithm,
    instance: Instance,
    max_rounds: int,
    require_halt: bool,
    record_trace: bool,
    inputs: dict[Node, Any] | None,
    engine: str,
) -> ExecutionResult:
    if engine == "reference":
        from repro.execution.legacy import run_reference

        # Normalize without compiling: the seed loop derives the topology
        # itself, and charging it a compilation would taint the baseline.
        if isinstance(instance, CompiledInstance):
            graph, numbering = instance.graph, instance.numbering
        elif isinstance(instance, Graph):
            graph, numbering = instance, None
        else:
            graph, numbering = instance
        return run_reference(
            fast.inner,
            graph,
            numbering,
            max_rounds=max_rounds,
            record_trace=record_trace,
            require_halt=require_halt,
            inputs=inputs,
        )
    return execute(
        fast,
        compile_instance(instance),
        max_rounds=max_rounds,
        record_trace=record_trace,
        require_halt=require_halt,
        inputs=inputs,
    )


_WORKER_STATE: tuple[FastPathAlgorithm, int, bool, bool, str] | None = None


def _init_worker(
    algorithm: Algorithm,
    max_rounds: int,
    require_halt: bool,
    record_trace: bool,
    engine: str,
    memoize_transitions: bool = False,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (
        fast_path(algorithm, memoize_transitions=memoize_transitions),
        max_rounds,
        require_halt,
        record_trace,
        engine,
    )


def _worker_run(payload: tuple[Instance, dict[Node, Any] | None]) -> ExecutionResult:
    assert _WORKER_STATE is not None
    fast, max_rounds, require_halt, record_trace, engine = _WORKER_STATE
    instance, inputs = payload
    return _run_one(fast, instance, max_rounds, require_halt, record_trace, inputs, engine)


def run_iter(
    algorithm: Algorithm,
    instances: Iterable[Instance],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    require_halt: bool = True,
    record_trace: bool = False,
    inputs: Sequence[dict[Node, Any] | None] | None = None,
    workers: int | None = None,
    engine: str = "compiled",
    memoize_transitions: bool = False,
) -> "Iterator[ExecutionResult]":
    """Lazily run one algorithm over a batch, yielding results in order.

    Same contract as :func:`run_many`, but results are produced as they
    complete, so consumers that stop at the first interesting result (e.g.
    counterexample search) do not pay for the rest of the batch.  With
    ``workers`` the pool is shut down as soon as the consumer stops
    iterating.
    """
    spec = resolve_engine(engine, requires={"sweep"}, operation="run_iter")
    if record_trace and "trace" not in spec.capabilities:
        # Batch engines (sweep, vector) do not materialize per-instance
        # traces; trace consumers transparently get the (identical) compiled
        # loop.
        engine = "compiled"
        spec = resolve_engine(engine, requires={"sweep"}, operation="run_iter")
    items = list(instances)
    if inputs is None:
        per_inputs: list[dict[Node, Any] | None] = [None] * len(items)
    else:
        per_inputs = list(inputs)
        if len(per_inputs) != len(items):
            raise ValueError(
                f"inputs has {len(per_inputs)} entries for {len(items)} instances"
            )

    if spec.batched:
        # Superposed/vector execution is already a batch-level optimization;
        # the whole sweep runs in-process (``workers`` would split the
        # interning arena and forfeit cross-instance deduplication).
        if spec.name == "vector":
            from repro.execution.vector import run_vector

            yield from run_vector(
                algorithm,
                items,
                max_rounds=max_rounds,
                require_halt=require_halt,
                inputs=per_inputs,
            )
            return
        from repro.execution.sweep import run_sweep

        yield from run_sweep(
            algorithm,
            items,
            max_rounds=max_rounds,
            require_halt=require_halt,
            inputs=per_inputs,
        )
        return

    if workers and workers > 1 and len(items) > 1:
        pool_size = min(workers, len(items))
        chunksize = max(1, len(items) // (pool_size * 4))
        with multiprocessing.Pool(
            pool_size,
            initializer=_init_worker,
            initargs=(
                algorithm,
                max_rounds,
                require_halt,
                record_trace,
                engine,
                memoize_transitions,
            ),
        ) as pool:
            yield from pool.imap(_worker_run, zip(items, per_inputs), chunksize=chunksize)
        return

    fast = fast_path(algorithm, memoize_transitions=memoize_transitions)
    for item, item_inputs in zip(items, per_inputs):
        yield _run_one(fast, item, max_rounds, require_halt, record_trace, item_inputs, engine)


def run_many(
    algorithm: Algorithm,
    instances: Iterable[Instance],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    require_halt: bool = True,
    record_trace: bool = False,
    inputs: Sequence[dict[Node, Any] | None] | None = None,
    workers: int | None = None,
    engine: str = "compiled",
    memoize_transitions: bool = False,
) -> list[ExecutionResult]:
    """Run one algorithm over a batch of instances.

    Parameters
    ----------
    algorithm:
        The distributed algorithm, shared by every instance of the batch.
    instances:
        The batch items: each is a :class:`~repro.graphs.graph.Graph` (run
        under the canonical consistent numbering), a ``(graph, numbering)``
        pair, or an already-:class:`CompiledInstance`.
    max_rounds, require_halt, record_trace:
        As in :func:`repro.execution.runner.run`, applied per instance.  With
        ``require_halt=True`` the first non-halting instance raises
        :class:`ExecutionError`, exactly like running the batch sequentially.
    inputs:
        Optional per-instance local-input mappings, aligned with
        ``instances``.
    workers:
        ``None``, 0 or 1 runs the batch in-process (sharing one projection
        cache across the whole batch).  A larger value fans the batch out
        over a ``multiprocessing`` pool; the algorithm and the instances must
        then be picklable.
    engine:
        ``"compiled"`` (default) uses this module's compiled active-set loop;
        ``"sweep"`` executes the whole batch superposed through
        :func:`repro.execution.sweep.run_sweep` (one transition evaluation
        per distinct configuration) and ``"vector"`` through the NumPy
        kernel of :func:`repro.execution.vector.run_vector` (one array pass
        per round over the whole batch; requires NumPy) -- for both batch
        engines ``workers`` is ignored and ``record_trace`` falls back to
        the compiled loop; ``"reference"`` dispatches every instance to the
        seed reference runner -- useful for differential testing and speedup
        benchmarks on identical workloads.  The knob resolves through
        :func:`repro.engines.resolve_engine`, which raises the shared
        unknown-engine/capability/availability errors.
    memoize_transitions:
        Additionally memoize ``initial_state`` and ``transition`` across the
        whole batch (see :class:`~repro.machines.fastpath.FastPathAlgorithm`).
        Sound for any algorithm that is a deterministic state machine in the
        paper's sense; adversarial sweeps of one small algorithm over many
        numberings benefit the most.  Ignored by the reference engine.

    Returns
    -------
    list[ExecutionResult]
        One result per instance, in input order.
    """
    return list(
        run_iter(
            algorithm,
            instances,
            max_rounds=max_rounds,
            require_halt=require_halt,
            record_trace=record_trace,
            inputs=inputs,
            workers=workers,
            engine=engine,
            memoize_transitions=memoize_transitions,
        )
    )
