"""A total order on heterogeneous message values.

The history-based simulations (Theorems 8 and 9) order received message
histories lexicographically; the paper simply fixes "a fixed order ``<_M`` of
the message set".  Python values of different types are not mutually
comparable, so :func:`canonical_key` maps an arbitrary nested message value to
a key built from strings and tuples only, which *is* totally ordered and
respects equality (equal values map to equal keys).
"""

from __future__ import annotations

from typing import Any


def canonical_key(value: Any) -> tuple:
    """A sort key defining a total order on nested hashable message values.

    The key is built recursively: containers are tagged with their kind and
    ordered element-wise (sets and multisets are first sorted by the keys of
    their elements), and atoms are ordered by type name and representation.
    Distinct values may in principle share a representation, but the key is
    only used to *order* messages, never to identify them.
    """
    from repro.machines.multiset import FrozenMultiset

    if isinstance(value, tuple):
        return ("tuple", tuple(canonical_key(item) for item in value))
    if isinstance(value, list):
        return ("list", tuple(canonical_key(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(canonical_key(item) for item in value)))
    if isinstance(value, FrozenMultiset):
        return (
            "multiset",
            tuple(sorted((canonical_key(item), count) for item, count in value.counts().items())),
        )
    if isinstance(value, dict):
        return (
            "dict",
            tuple(sorted((canonical_key(key), canonical_key(val)) for key, val in value.items())),
        )
    if isinstance(value, bool):
        return ("bool", repr(value))
    if isinstance(value, int):
        return ("int", f"{value:+032d}")
    return (type(value).__name__, repr(value))
