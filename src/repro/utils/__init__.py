"""Small shared utilities."""

from repro.utils.ordering import canonical_key

__all__ = ["canonical_key"]
