"""Round-trip checks between algorithms and formulas (Theorem 2).

The capture theorems assert two inclusions for every class: a formula can be
realised by an algorithm and an algorithm can be captured by a formula.  This
module provides the machinery to *check* such correspondences on concrete
graph families: evaluate a formula in the class's Kripke encoding, run an
algorithm under the adversarial port numberings, and compare.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.execution.adversary import port_numberings_to_check
from repro.execution.runner import run
from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering
from repro.logic.semantics import extension
from repro.logic.syntax import Formula
from repro.machines.algorithm import Algorithm
from repro.machines.models import ProblemClass
from repro.modal.encoding import kripke_encoding, variant_for_class


def formula_output(
    graph: Graph,
    numbering: PortNumbering,
    formula: Formula,
    problem_class: ProblemClass,
    delta: int | None = None,
) -> dict[Node, int]:
    """The 0/1 labelling ``||formula||`` in the class's encoding of ``(G, p)``."""
    model = kripke_encoding(
        graph, numbering, variant=variant_for_class(problem_class), delta=delta
    )
    truth = extension(model, formula)
    return {node: 1 if node in truth else 0 for node in graph.nodes}


def algorithm_matches_formula(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None = None,
    exhaustive_limit: int = 500,
    samples: int = 20,
    max_rounds: int = 10_000,
) -> bool:
    """Whether the algorithm and the formula agree on every tested input.

    For each graph and each adversarial port numbering (consistent only when
    the class is VVc), the algorithm's output vector is compared against the
    extension of the formula in the matching Kripke encoding.  Outputs other
    than 0/1 are compared against membership: output 1 must coincide with
    truth.
    """
    for graph in graphs:
        for numbering in port_numberings_to_check(
            graph,
            consistent_only=problem_class.requires_consistency,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
        ):
            expected = formula_output(graph, numbering, formula, problem_class, delta=delta)
            result = run(algorithm, graph, numbering, max_rounds=max_rounds)
            actual = {node: 1 if result.outputs[node] == 1 else 0 for node in graph.nodes}
            if actual != expected:
                return False
    return True


def disagreement_witness(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None = None,
    exhaustive_limit: int = 500,
    samples: int = 20,
) -> tuple[Graph, PortNumbering, dict[Node, int], dict[Node, int]] | None:
    """The first input on which algorithm and formula disagree, or ``None``.

    Useful for debugging compiled algorithms/formulas: returns the graph, the
    port numbering, the formula's labelling and the algorithm's labelling.
    """
    for graph in graphs:
        for numbering in port_numberings_to_check(
            graph,
            consistent_only=problem_class.requires_consistency,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
        ):
            expected = formula_output(graph, numbering, formula, problem_class, delta=delta)
            result = run(algorithm, graph, numbering)
            actual = {node: 1 if result.outputs[node] == 1 else 0 for node in graph.nodes}
            if actual != expected:
                return graph, numbering, expected, actual
    return None
