"""Round-trip checks between algorithms and formulas (Theorem 2).

The capture theorems assert two inclusions for every class: a formula can be
realised by an algorithm and an algorithm can be captured by a formula.  This
module provides the machinery to *check* such correspondences on concrete
graph families: evaluate a formula in the class's Kripke encoding, run an
algorithm under the adversarial port numberings, and compare.

Both halves run on the batch engines: the adversarial executions stream
through :func:`repro.execution.engine.run_iter` (lazy, so a disagreement
stops the sweep early) and the formula side is evaluated by the compiled
bitset model checker (:mod:`repro.logic.engine`), one compiled encoding per
port numbering.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.execution.adversary import port_numberings_to_check
from repro.execution.engine import DEFAULT_MAX_ROUNDS, run_iter
from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering
from repro.logic.engine import check_many
from repro.logic.syntax import Formula
from repro.machines.algorithm import Algorithm
from repro.machines.models import ProblemClass
from repro.modal.encoding import kripke_encoding, variant_for_class


def formula_output(
    graph: Graph,
    numbering: PortNumbering,
    formula: Formula,
    problem_class: ProblemClass,
    delta: int | None = None,
) -> dict[Node, int]:
    """The 0/1 labelling ``||formula||`` in the class's encoding of ``(G, p)``."""
    model = kripke_encoding(
        graph, numbering, variant=variant_for_class(problem_class), delta=delta
    )
    truth = check_many(model, [formula])[0]
    return {node: 1 if node in truth else 0 for node in graph.nodes}


def _disagreements(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None,
    exhaustive_limit: int,
    samples: int,
    max_rounds: int,
) -> Iterator[tuple[Graph, PortNumbering, dict[Node, int], dict[Node, int]]]:
    """Lazily yield the inputs on which algorithm and formula disagree.

    Per graph, the adversarial numberings are enumerated once, the
    executions run as one lazy ``run_iter`` batch (shared caches across the
    sweep) and each result is compared against the formula's labelling in
    the matching compiled Kripke encoding.
    """
    for graph in graphs:
        numberings = list(
            port_numberings_to_check(
                graph,
                consistent_only=problem_class.requires_consistency,
                exhaustive_limit=exhaustive_limit,
                samples=samples,
            )
        )
        results = run_iter(
            algorithm,
            [(graph, numbering) for numbering in numberings],
            max_rounds=max_rounds,
        )
        for numbering, result in zip(numberings, results):
            expected = formula_output(graph, numbering, formula, problem_class, delta=delta)
            actual = {node: 1 if result.outputs[node] == 1 else 0 for node in graph.nodes}
            if actual != expected:
                yield graph, numbering, expected, actual


def algorithm_matches_formula(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None = None,
    exhaustive_limit: int = 500,
    samples: int = 20,
    max_rounds: int = 10_000,
) -> bool:
    """Whether the algorithm and the formula agree on every tested input.

    For each graph and each adversarial port numbering (consistent only when
    the class is VVc), the algorithm's output vector is compared against the
    extension of the formula in the matching Kripke encoding.  Outputs other
    than 0/1 are compared against membership: output 1 must coincide with
    truth.
    """
    disagreement = next(
        _disagreements(
            algorithm,
            formula,
            problem_class,
            graphs,
            delta,
            exhaustive_limit,
            samples,
            max_rounds,
        ),
        None,
    )
    return disagreement is None


def disagreement_witness(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None = None,
    exhaustive_limit: int = 500,
    samples: int = 20,
) -> tuple[Graph, PortNumbering, dict[Node, int], dict[Node, int]] | None:
    """The first input on which algorithm and formula disagree, or ``None``.

    Useful for debugging compiled algorithms/formulas: returns the graph, the
    port numbering, the formula's labelling and the algorithm's labelling.
    """
    return next(
        _disagreements(
            algorithm,
            formula,
            problem_class,
            graphs,
            delta,
            exhaustive_limit,
            samples,
            DEFAULT_MAX_ROUNDS,
        ),
        None,
    )


__all__ = [
    "algorithm_matches_formula",
    "disagreement_witness",
    "formula_output",
]
