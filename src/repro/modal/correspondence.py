"""Round-trip checks between algorithms and formulas (Theorem 2).

The capture theorems assert two inclusions for every class: a formula can be
realised by an algorithm and an algorithm can be captured by a formula.  This
module provides the machinery to *check* such correspondences on concrete
graph families: evaluate a formula in the class's Kripke encoding, run an
algorithm under the adversarial port numberings, and compare.

Both halves run on the batch engines: the adversarial executions run
superposed through the sweep engine (:mod:`repro.execution.sweep`, one
transition evaluation per distinct configuration across all numberings of a
graph) and the formula side is evaluated by the compiled bitset model
checker (:mod:`repro.logic.engine`), one compiled encoding per port
numbering.  The per-instance compiled loop and the seed runner remain
selectable through ``engine`` as differential oracles.

:func:`machine_roundtrip_report` is the full Theorem 2 pipeline in one call:
a finite-state machine is compiled to its Table 4/5 formula (a hash-consed
DAG), the formula is compiled back to a
:class:`~repro.modal.formula_to_algorithm.CompiledFormulaAlgorithm`, and
machine outputs, formula extensions and recompiled-algorithm outputs are
cross-checked over every adversarial port numbering of the given graphs --
optionally against the seed formula-algorithm as a differential oracle.
The campaign subsystem's ``correspondence`` scenario kind and experiment E4
both run on it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.execution.adversary import port_numberings_to_check
from repro.execution.engine import (
    DEFAULT_MAX_ROUNDS,
    ExecutionError,
    logic_engine_for,
    run_iter,
)
from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering
from repro.logic.engine import check_many
from repro.logic.syntax import Formula, dag_size, modal_depth, tree_size
from repro.machines.algorithm import Algorithm
from repro.machines.models import ProblemClass
from repro.machines.state_machine import FiniteStateMachine, algorithm_from_machine
from repro.modal.algorithm_to_formula import (
    DEFAULT_MAX_FORMULA_NODES,
    formula_for_machine,
)
from repro.modal.encoding import kripke_encoding, variant_for_class
from repro.modal.formula_to_algorithm import algorithm_for_formula


def formula_output(
    graph: Graph,
    numbering: PortNumbering,
    formula: Formula,
    problem_class: ProblemClass,
    delta: int | None = None,
    engine: str = "compiled",
) -> dict[Node, int]:
    """The 0/1 labelling ``||formula||`` in the class's encoding of ``(G, p)``."""
    model = kripke_encoding(
        graph, numbering, variant=variant_for_class(problem_class), delta=delta
    )
    truth = check_many(model, [formula], engine=engine)[0]
    return {node: 1 if node in truth else 0 for node in graph.nodes}


def _disagreements(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None,
    exhaustive_limit: int,
    samples: int,
    max_rounds: int,
) -> Iterator[tuple[Graph, PortNumbering, dict[Node, int], dict[Node, int]]]:
    """Lazily yield the inputs on which algorithm and formula disagree.

    Per graph, the adversarial numberings are enumerated once, the
    executions run superposed through the sweep engine (one transition
    evaluation per distinct configuration across the numberings) and each
    result is compared against the formula's labelling in the matching
    compiled Kripke encoding.

    The sweep engine materializes a whole graph's sweep up front, so
    non-halting runs are collected with ``require_halt=False`` and re-raised
    here *in numbering order* -- a disagreement on an earlier numbering is
    still yielded before a later numbering's :class:`ExecutionError`,
    exactly as the lazy per-instance stream behaved.
    """
    for graph in graphs:
        numberings = list(
            port_numberings_to_check(
                graph,
                consistent_only=problem_class.requires_consistency,
                exhaustive_limit=exhaustive_limit,
                samples=samples,
            )
        )
        results = run_iter(
            algorithm,
            [(graph, numbering) for numbering in numberings],
            max_rounds=max_rounds,
            require_halt=False,
            engine="sweep",
        )
        for numbering, result in zip(numberings, results):
            if not result.halted:
                raise ExecutionError(
                    f"{algorithm.name} did not halt on {graph!r} "
                    f"within {max_rounds} rounds"
                )
            expected = formula_output(graph, numbering, formula, problem_class, delta=delta)
            actual = {node: 1 if result.outputs[node] == 1 else 0 for node in graph.nodes}
            if actual != expected:
                yield graph, numbering, expected, actual


def algorithm_matches_formula(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None = None,
    exhaustive_limit: int = 500,
    samples: int = 20,
    max_rounds: int = 10_000,
) -> bool:
    """Whether the algorithm and the formula agree on every tested input.

    For each graph and each adversarial port numbering (consistent only when
    the class is VVc), the algorithm's output vector is compared against the
    extension of the formula in the matching Kripke encoding.  Outputs other
    than 0/1 are compared against membership: output 1 must coincide with
    truth.
    """
    disagreement = next(
        _disagreements(
            algorithm,
            formula,
            problem_class,
            graphs,
            delta,
            exhaustive_limit,
            samples,
            max_rounds,
        ),
        None,
    )
    return disagreement is None


def disagreement_witness(
    algorithm: Algorithm,
    formula: Formula,
    problem_class: ProblemClass,
    graphs: Iterable[Graph],
    delta: int | None = None,
    exhaustive_limit: int = 500,
    samples: int = 20,
) -> tuple[Graph, PortNumbering, dict[Node, int], dict[Node, int]] | None:
    """The first input on which algorithm and formula disagree, or ``None``.

    Useful for debugging compiled algorithms/formulas: returns the graph, the
    port numbering, the formula's labelling and the algorithm's labelling.
    """
    return next(
        _disagreements(
            algorithm,
            formula,
            problem_class,
            graphs,
            delta,
            exhaustive_limit,
            samples,
            DEFAULT_MAX_ROUNDS,
        ),
        None,
    )


# --------------------------------------------------------------------------- #
# The Theorem 2 round-trip pipeline
# --------------------------------------------------------------------------- #


@dataclass
class RoundTripReport:
    """Outcome of one machine -> formula -> algorithm round trip.

    ``formula_agrees`` compares the machine's outputs against the formula's
    extension in the class's Kripke encoding (Theorem 2, parts 3-4);
    ``algorithms_agree`` compares the recompiled formula-algorithm's outputs
    against the same extension (parts 1-2) -- and, when the differential
    oracle ran, against the seed formula-algorithm's outputs.  ``dag_size``
    vs ``tree_size`` quantifies the hash-consing win on the emitted formula.
    """

    problem_class: ProblemClass
    running_time: int
    modal_depth: int
    dag_size: int
    tree_size: int
    instances: int
    formula_agrees: bool = True
    algorithms_agree: bool = True
    oracle_checked: bool = False
    first_disagreement: dict[str, Any] | None = field(default=None, repr=False)

    @property
    def agree(self) -> bool:
        return self.formula_agrees and self.algorithms_agree

    def to_dict(self) -> dict[str, Any]:
        return {
            "problem_class": str(self.problem_class),
            "running_time": self.running_time,
            "modal_depth": self.modal_depth,
            "dag_size": self.dag_size,
            "tree_size": self.tree_size,
            "instances": self.instances,
            "formula_agrees": self.formula_agrees,
            "algorithms_agree": self.algorithms_agree,
            "oracle_checked": self.oracle_checked,
            "agree": self.agree,
        }


def _zero_one(
    outputs: dict[Node, Any], nodes: Iterable[Node], accepting: Any = 1
) -> dict[Node, int]:
    return {node: 1 if outputs.get(node) == accepting else 0 for node in nodes}


def machine_roundtrip_report(
    machine: FiniteStateMachine,
    problem_class: ProblemClass,
    running_time: int,
    graphs: Iterable[Graph] | None = None,
    pairs: Sequence[tuple[Graph, PortNumbering]] | None = None,
    engine: str = "sweep",
    cross_check: bool = True,
    exhaustive_limit: int = 500,
    samples: int = 20,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_formula_nodes: int | None = DEFAULT_MAX_FORMULA_NODES,
    accepting_output: Any = 1,
    formula: Formula | None = None,
    algorithms: tuple[Any, Any, Any] | None = None,
) -> RoundTripReport:
    """Run the full Theorem 2 round trip for one machine and report.

    Either ``graphs`` (each swept over its adversarial port numberings,
    consistent-only where the class requires it) or explicit
    ``(graph, numbering)`` ``pairs`` select the instances.  All three
    fronts stream through the batch engines: one superposed adversarial
    sweep per algorithm per graph (``engine="sweep"``, the default), one
    compiled Kripke encoding per numbering for the formula side.  ``engine``
    selects the execution backend (``"sweep"``, ``"compiled"`` or
    ``"reference"``); the formula-algorithm and model-checker backends
    follow it, with ``"sweep"`` mapping to their compiled implementations.
    With ``cross_check=True`` and a non-reference engine the seed
    formula-algorithm additionally runs as a differential oracle.  Callers
    evaluating one machine over many instance batches may pass a
    pre-compiled ``formula`` (the campaign executor does) to skip the
    Table 4/5 enumeration, and/or pre-built ``algorithms`` -- an
    ``(original, realized, oracle)`` triple matching this call's ``engine``
    -- so the three fronts (and any fast-path/sweep tables living on them)
    are reused across calls instead of recompiled per call.
    """
    if formula is None:
        formula = formula_for_machine(
            machine,
            problem_class,
            running_time,
            accepting_output=accepting_output,
            max_formula_nodes=max_formula_nodes,
        )
    report = RoundTripReport(
        problem_class=problem_class,
        running_time=running_time,
        modal_depth=modal_depth(formula),
        dag_size=dag_size(formula),
        tree_size=tree_size(formula),
        instances=0,
    )
    if graphs is None and pairs is None:
        raise ValueError(
            "machine_roundtrip_report needs 'graphs' (adversarial sweep) or "
            "explicit (graph, numbering) 'pairs'; an empty round trip would "
            "report agreement vacuously"
        )
    logic_engine = logic_engine_for(engine)
    if algorithms is None:
        original = algorithm_from_machine(machine.as_state_machine())
        realized = algorithm_for_formula(formula, problem_class, engine=logic_engine)
        oracle = (
            algorithm_for_formula(formula, problem_class, engine="reference")
            if cross_check and engine != "reference"
            else None
        )
    else:
        original, realized, oracle = algorithms
        if not (cross_check and engine != "reference"):
            oracle = None

    if pairs is not None:
        batches: list[tuple[Graph, list[PortNumbering]]] = []
        by_graph: dict[int, int] = {}
        for graph, numbering in pairs:
            slot = by_graph.get(id(graph))
            if slot is None:
                by_graph[id(graph)] = len(batches)
                batches.append((graph, [numbering]))
            else:
                batches[slot][1].append(numbering)
    else:
        batches = [
            (
                graph,
                list(
                    port_numberings_to_check(
                        graph,
                        consistent_only=problem_class.requires_consistency,
                        exhaustive_limit=exhaustive_limit,
                        samples=samples,
                    )
                ),
            )
            for graph in graphs or ()
        ]

    for graph, numberings in batches:
        instances = [(graph, numbering) for numbering in numberings]
        streams = [
            run_iter(
                original, instances, max_rounds=max_rounds,
                engine=engine, memoize_transitions=True,
            ),
            run_iter(
                realized, instances, max_rounds=max_rounds,
                engine=engine, memoize_transitions=True,
            ),
        ]
        if oracle is not None:
            streams.append(
                run_iter(
                    oracle, instances, max_rounds=max_rounds,
                    engine="reference", memoize_transitions=True,
                )
            )
        for numbering, results in zip(numberings, zip(*streams)):
            report.instances += 1
            expected = formula_output(
                graph, numbering, formula, problem_class, engine=logic_engine
            )
            # The formula is the indicator of ``accepting_output``; the
            # realized algorithms genuinely output 0/1.
            machine_out = _zero_one(results[0].outputs, graph.nodes, accepting_output)
            realized_out = _zero_one(results[1].outputs, graph.nodes)
            agrees = True
            if machine_out != expected:
                report.formula_agrees = False
                agrees = False
            if realized_out != expected:
                report.algorithms_agree = False
                agrees = False
            if oracle is not None:
                report.oracle_checked = True
                oracle_out = _zero_one(results[2].outputs, graph.nodes)
                if oracle_out != realized_out:
                    report.algorithms_agree = False
                    agrees = False
            if not agrees and report.first_disagreement is None:
                report.first_disagreement = {
                    "graph": graph,
                    "numbering": numbering,
                    "formula": expected,
                    "machine": machine_out,
                    "realized": realized_out,
                }
    return report


__all__ = [
    "RoundTripReport",
    "algorithm_matches_formula",
    "disagreement_witness",
    "formula_output",
    "machine_roundtrip_report",
]
