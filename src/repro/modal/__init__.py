"""The bridge between distributed algorithms and modal logic (Section 4).

* :mod:`~repro.modal.encoding` -- the four Kripke encodings ``K++``, ``K-+``,
  ``K+-`` and ``K--`` of a port-numbered graph (Section 4.3).
* :mod:`~repro.modal.formula_to_algorithm` -- Theorem 2, parts 1-2: every
  formula of the appropriate logic is realised by a local algorithm of the
  matching class, running for ``md(phi) + 1`` rounds; compiled to packed-int
  transition tables over the hash-consed formula pool.
* :mod:`~repro.modal.algorithm_to_formula` -- Theorem 2, parts 3-4: every
  finite-state local algorithm is captured by a formula whose modal depth is
  the running time, emitted as a shared DAG with a fail-fast size budget.
* :mod:`~repro.modal.correspondence` -- the round-trip pipeline
  (machine == formula == recompiled algorithm) behind the tests, experiment
  E4 and the campaign subsystem's ``correspondence`` scenarios.
"""

from repro.modal.encoding import (
    KripkeVariant,
    degree_proposition,
    kripke_encoding,
    signature_indices,
    variant_for_class,
)
from repro.modal.formula_to_algorithm import (
    CompiledFormulaAlgorithm,
    FormulaAlgorithm,
    algorithm_for_formula,
)
from repro.modal.algorithm_to_formula import (
    FormulaSizeError,
    formula_for_machine,
    predict_formula_nodes,
)
from repro.modal.correspondence import (
    RoundTripReport,
    algorithm_matches_formula,
    formula_output,
    machine_roundtrip_report,
)

__all__ = [
    "KripkeVariant",
    "degree_proposition",
    "kripke_encoding",
    "signature_indices",
    "variant_for_class",
    "CompiledFormulaAlgorithm",
    "FormulaAlgorithm",
    "FormulaSizeError",
    "algorithm_for_formula",
    "formula_for_machine",
    "predict_formula_nodes",
    "RoundTripReport",
    "algorithm_matches_formula",
    "formula_output",
    "machine_roundtrip_report",
]
