"""The bridge between distributed algorithms and modal logic (Section 4).

* :mod:`~repro.modal.encoding` -- the four Kripke encodings ``K++``, ``K-+``,
  ``K+-`` and ``K--`` of a port-numbered graph (Section 4.3).
* :mod:`~repro.modal.formula_to_algorithm` -- Theorem 2, parts 1-2: every
  formula of the appropriate logic is realised by a local algorithm of the
  matching class, running for ``md(phi) + 1`` rounds.
* :mod:`~repro.modal.algorithm_to_formula` -- Theorem 2, parts 3-4: every
  finite-state local algorithm is captured by a formula whose modal depth is
  the running time.
* :mod:`~repro.modal.correspondence` -- round-trip equivalence checks used by
  the tests and experiment E4.
"""

from repro.modal.encoding import (
    KripkeVariant,
    degree_proposition,
    kripke_encoding,
    signature_indices,
    variant_for_class,
)
from repro.modal.formula_to_algorithm import FormulaAlgorithm, algorithm_for_formula
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.correspondence import algorithm_matches_formula, formula_output

__all__ = [
    "KripkeVariant",
    "degree_proposition",
    "kripke_encoding",
    "signature_indices",
    "variant_for_class",
    "FormulaAlgorithm",
    "algorithm_for_formula",
    "formula_for_machine",
    "algorithm_matches_formula",
    "formula_output",
]
