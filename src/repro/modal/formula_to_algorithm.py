"""Compiling modal formulas into local algorithms (Theorem 2, parts 1-2).

Given a formula ``psi`` in the logic matching a problem class, the compiled
algorithm evaluates ``psi`` at every node of any port-numbered graph and
outputs 1 exactly on the extension ``||psi||`` of the formula in the
corresponding Kripke encoding.  The algorithm follows the paper's
construction: every node maintains a three-valued assignment (true / false /
undefined) to the subformulas of ``psi``, resolves subformulas of modal depth
``t`` in round ``t``, exchanges the truth values needed by its neighbours'
modal subformulas, and halts once the value of ``psi`` itself is known -- so
the running time is at most ``md(psi) + 1`` rounds and the algorithm is local.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
    modal_depth,
)
from repro.machines.algorithm import NO_MESSAGE, Algorithm, Output
from repro.machines.models import Model, ProblemClass, ReceiveMode, SendMode
from repro.machines.multiset import FrozenMultiset
from repro.modal.encoding import STAR, degree_proposition

#: The three-valued "undefined" marker of the paper's construction.
UNDEFINED = "U"


def _normalise(formula: Formula) -> Formula:
    """Rewrite boxes and implications into the And/Or/Not/Diamond core."""
    if isinstance(formula, (Prop, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_normalise(formula.operand))
    if isinstance(formula, And):
        return And(_normalise(formula.left), _normalise(formula.right))
    if isinstance(formula, Or):
        return Or(_normalise(formula.left), _normalise(formula.right))
    if isinstance(formula, Implies):
        return Or(Not(_normalise(formula.left)), _normalise(formula.right))
    if isinstance(formula, Diamond):
        return Diamond(_normalise(formula.operand), index=formula.index)
    if isinstance(formula, GradedDiamond):
        return GradedDiamond(_normalise(formula.operand), grade=formula.grade, index=formula.index)
    if isinstance(formula, Box):
        return Not(Diamond(Not(_normalise(formula.operand)), index=formula.index))
    raise TypeError(f"unknown formula type: {formula!r}")


def _ordered_subformulas(formula: Formula) -> list[Formula]:
    """All subformulas, children before parents (deterministic order)."""
    ordered: list[Formula] = []
    seen: set[Formula] = set()

    def visit(phi: Formula) -> None:
        if phi in seen:
            return
        if isinstance(phi, Not):
            visit(phi.operand)
        elif isinstance(phi, (And, Or)):
            visit(phi.left)
            visit(phi.right)
        elif isinstance(phi, (Diamond, GradedDiamond)):
            visit(phi.operand)
        seen.add(phi)
        ordered.append(phi)

    visit(formula)
    return ordered


class FormulaAlgorithm(Algorithm):
    """The local algorithm realising a modal formula in a given problem class.

    Parameters
    ----------
    formula:
        The formula to evaluate.  Its modality indices must match the class:
        pairs ``(i, j)`` for VV/VVc, ``('*', j)`` for MV/SV, ``(i, '*')`` for
        VB, and ``('*', '*')`` (or ``None``) for MB/SB.  Graded diamonds are
        only meaningful for the Multiset classes (MV, MB) -- and for the
        port-aware classes where each relation has at most one successor; they
        are rejected for SV and SB, whose algorithms cannot count.
    problem_class:
        The problem class whose model the algorithm must belong to.
    """

    model: ClassVar[Model]  # set per instance below

    def __init__(self, formula: Formula, problem_class: ProblemClass) -> None:
        self._original = formula
        self._formula = _normalise(formula)
        self._class = problem_class
        self.model = problem_class.model
        self._subformulas = _ordered_subformulas(self._formula)
        self._position = {phi: index for index, phi in enumerate(self._subformulas)}
        self._modal = [
            phi for phi in self._subformulas if isinstance(phi, (Diamond, GradedDiamond))
        ]
        # Positions (in the payload) of the operands whose truth values are shipped.
        operand_positions: list[int] = []
        for phi in self._modal:
            position = self._position[phi.operand]
            if position not in operand_positions:
                operand_positions.append(position)
        self._payload_positions = tuple(operand_positions)
        self._payload_slot = {position: slot for slot, position in enumerate(self._payload_positions)}
        self._validate_indices()

    # ------------------------------------------------------------------ #
    # Public metadata
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return f"FormulaAlgorithm[{self._class}]({self._original})"

    @property
    def formula(self) -> Formula:
        return self._original

    @property
    def problem_class(self) -> ProblemClass:
        return self._class

    @property
    def running_time_bound(self) -> int:
        """The guaranteed bound ``md(psi) + 1`` on the number of rounds."""
        return modal_depth(self._formula) + 1

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def _validate_indices(self) -> None:
        sees_in = self._class.model.receive is ReceiveMode.VECTOR
        sees_out = self._class.model.send is SendMode.PORT
        for phi in self._modal:
            index = phi.index
            if index is None:
                index = (STAR, STAR)
            if not (isinstance(index, tuple) and len(index) == 2):
                raise ValueError(f"modality index {phi.index!r} must be a pair (i, j)")
            in_part, out_part = index
            if sees_in and in_part == STAR and self._class not in (
                ProblemClass.MV,
                ProblemClass.SV,
            ):
                raise ValueError(
                    f"class {self._class} formulas must name the input port, got {phi.index!r}"
                )
            if not sees_in and in_part != STAR:
                raise ValueError(
                    f"class {self._class} has no input-port information, got index {phi.index!r}"
                )
            if not sees_out and out_part != STAR:
                raise ValueError(
                    f"class {self._class} has no output-port information, got index {phi.index!r}"
                )
            if sees_out and out_part == STAR:
                raise ValueError(
                    f"class {self._class} formulas must name the output port, got {phi.index!r}"
                )
            if (
                isinstance(phi, GradedDiamond)
                and phi.grade > 1
                and self._class in (ProblemClass.SV, ProblemClass.SB)
            ):
                raise ValueError(
                    f"class {self._class} algorithms cannot count; graded diamond {phi} is not allowed"
                )

    # ------------------------------------------------------------------ #
    # Three-valued evaluation helpers
    # ------------------------------------------------------------------ #

    def _boolean_fixpoint(self, values: list[Any], degree: int) -> None:
        """Resolve propositional structure as far as possible, in place."""
        changed = True
        while changed:
            changed = False
            for position, phi in enumerate(self._subformulas):
                if values[position] != UNDEFINED:
                    continue
                new_value: Any = UNDEFINED
                if isinstance(phi, Prop):
                    new_value = 1 if phi.name == degree_proposition(degree) else 0
                elif isinstance(phi, Top):
                    new_value = 1
                elif isinstance(phi, Bottom):
                    new_value = 0
                elif isinstance(phi, Not):
                    child = values[self._position[phi.operand]]
                    if child != UNDEFINED:
                        new_value = 1 - child
                elif isinstance(phi, And):
                    left = values[self._position[phi.left]]
                    right = values[self._position[phi.right]]
                    if 0 in (left, right):
                        new_value = 0
                    elif left == 1 and right == 1:
                        new_value = 1
                elif isinstance(phi, Or):
                    left = values[self._position[phi.left]]
                    right = values[self._position[phi.right]]
                    if 1 in (left, right):
                        new_value = 1
                    elif left == 0 and right == 0:
                        new_value = 0
                if new_value != UNDEFINED:
                    values[position] = new_value
                    changed = True

    def _state(self, degree: int, values: list[Any]) -> Any:
        # A node halts only once *every* subformula is resolved (which happens
        # at round md(psi) for every node simultaneously).  Halting as soon as
        # the root value is known would be premature: a halted node sends
        # ``m0``, yet its neighbours may still need their values of deeper
        # subformulas in later rounds.
        if all(value != UNDEFINED for value in values):
            return Output(values[self._position[self._formula]])
        return (degree, tuple(values))

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        values: list[Any] = [UNDEFINED] * len(self._subformulas)
        self._boolean_fixpoint(values, degree)
        return self._state(degree, values)

    def _payload(self, values: tuple[Any, ...]) -> tuple[Any, ...]:
        return tuple(values[position] for position in self._payload_positions)

    def send(self, state: Any, port: int) -> Any:
        degree, values = state
        if self.model.send is SendMode.BROADCAST:
            return self._payload(values)
        return (port, self._payload(values))

    def broadcast(self, state: Any) -> Any:
        _degree, values = state
        return self._payload(values)

    def _payload_value(self, message: Any, operand_position: int) -> Any:
        """Read the operand's truth value out of a received payload."""
        if message == NO_MESSAGE or message is None:
            return 0
        payload = message
        if self.model.send is SendMode.PORT:
            _port, payload = message
        slot = self._payload_slot[operand_position]
        return payload[slot]

    def _message_out_port(self, message: Any) -> int | None:
        if message == NO_MESSAGE or message is None:
            return None
        if self.model.send is SendMode.PORT:
            return message[0]
        return None

    def _resolve_modal(self, phi: Formula, degree: int, previous: tuple[Any, ...], received: Any) -> Any:
        # The gate uses the *previous* state: a modal subformula may only be
        # resolved once its operand was already known in the previous round,
        # because the received payloads carry the senders' previous-round
        # values (this is the paper's condition "f(theta) != U").
        operand_position = self._position[phi.operand]
        if previous[operand_position] == UNDEFINED:
            return UNDEFINED
        grade = phi.grade if isinstance(phi, GradedDiamond) else 1
        index = phi.index if phi.index is not None else (STAR, STAR)
        in_part, out_part = index

        def operand_true(message: Any) -> bool:
            return self._payload_value(message, operand_position) == 1

        receive = self.model.receive
        if receive is ReceiveMode.VECTOR:
            # received is the vector of messages indexed by input port.
            if in_part == STAR:
                candidates = list(received)
            else:
                if in_part > degree:
                    return 1 if grade == 0 else 0
                candidates = [received[in_part - 1]]
            count = 0
            for message in candidates:
                if message == NO_MESSAGE:
                    continue
                if out_part != STAR and self._message_out_port(message) != out_part:
                    continue
                if operand_true(message):
                    count += 1
            return 1 if count >= grade else 0
        if receive is ReceiveMode.MULTISET:
            count = 0
            for message, multiplicity in received.counts().items():
                if message == NO_MESSAGE:
                    continue
                if out_part != STAR and self._message_out_port(message) != out_part:
                    continue
                if operand_true(message):
                    count += multiplicity
            return 1 if count >= grade else 0
        # Set semantics: existence only.
        exists = any(
            message != NO_MESSAGE
            and (out_part == STAR or self._message_out_port(message) == out_part)
            and operand_true(message)
            for message in received
        )
        if grade == 0:
            return 1
        return 1 if exists else 0

    def transition(self, state: Any, received: Any) -> Any:
        degree, previous = state
        values = list(previous)
        for phi in self._modal:
            position = self._position[phi]
            if values[position] != UNDEFINED:
                continue
            values[position] = self._resolve_modal(phi, degree, previous, received)
        self._boolean_fixpoint(values, degree)
        return self._state(degree, values)


def algorithm_for_formula(formula: Formula, problem_class: ProblemClass) -> FormulaAlgorithm:
    """Convenience constructor for :class:`FormulaAlgorithm`."""
    return FormulaAlgorithm(formula, problem_class)
