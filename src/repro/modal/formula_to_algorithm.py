"""Compiling modal formulas into local algorithms (Theorem 2, parts 1-2).

Given a formula ``psi`` in the logic matching a problem class, the compiled
algorithm evaluates ``psi`` at every node of any port-numbered graph and
outputs 1 exactly on the extension ``||psi||`` of the formula in the
corresponding Kripke encoding.  The algorithm follows the paper's
construction: every node maintains a three-valued assignment (true / false /
undefined) to the subformulas of ``psi``, resolves subformulas of modal depth
``t`` in round ``t``, exchanges the truth values needed by its neighbours'
modal subformulas, and halts once every value is known -- so the running
time is at most ``md(psi) + 1`` rounds and the algorithm is local.

Two implementations share that construction:

* :class:`CompiledFormulaAlgorithm` (the default) compiles the normalised
  formula DAG once into flat position tables over the hash-consed pool
  (:mod:`repro.logic.syntax`): the three-valued assignment is packed into a
  single int (one value bit and one known bit per distinct subformula), the
  Boolean closure is one ascending pass over positions (children come
  before parents, so no fixpoint loop), and messages are small packed ints.
  States and messages are tiny hashable values, so the batch execution
  engine's :class:`~repro.machines.fastpath.FastPathAlgorithm` caches hit
  across a whole adversarial sweep, and formulas with thousands of shared
  subterms (the Table 4/5 output) run without recursion limits.
* :class:`FormulaAlgorithm` is the seed construction -- dict-of-subformula
  states, an iterate-to-fixpoint Boolean pass -- preserved as the
  differential oracle behind ``engine="reference"``.

:func:`algorithm_for_formula` selects between them with the same
``engine="compiled" | "reference"`` knob the execution and logic layers use.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.engines.registry import engine_names
from repro.logic.engine import check_engine
from repro.logic.syntax import (
    KIND_AND,
    KIND_BOTTOM,
    KIND_DIAMOND,
    KIND_GRADED,
    KIND_IMPLIES,
    KIND_NOT,
    KIND_OR,
    KIND_PROP,
    KIND_TOP,
    And,
    Bottom,
    Diamond,
    Formula,
    GradedDiamond,
    Not,
    Or,
    Prop,
    Top,
    formula_pool,
    modal_depth,
)
from repro.machines.algorithm import NO_MESSAGE, Algorithm, Output
from repro.machines.models import Model, ProblemClass, ReceiveMode, SendMode
from repro.modal.encoding import STAR, degree_proposition

#: The three-valued "undefined" marker of the paper's construction.
UNDEFINED = "U"


def _normalise(formula: Formula) -> Formula:
    """Rewrite boxes and implications into the And/Or/Not/Diamond core.

    Operates bottom-up over the pool ids of the formula's DAG (children
    before parents), so arbitrarily deep formulas -- the Table 4/5
    conjunction chains run to thousands of levels -- normalise without
    recursion, and shared subterms are rewritten once.
    """
    pool = formula_pool()
    ids = pool.reachable_ids(formula.node_id)
    kinds, kids_of, payloads, nodes = pool.kinds, pool.children, pool.payloads, pool.nodes
    rewritten: dict[int, Formula] = {}
    for i in ids:
        kind = kinds[i]
        kids = kids_of[i]
        if kind in (KIND_PROP, KIND_TOP, KIND_BOTTOM):
            rewritten[i] = nodes[i]
        elif kind == KIND_NOT:
            rewritten[i] = Not(rewritten[kids[0]])
        elif kind == KIND_AND:
            rewritten[i] = And(rewritten[kids[0]], rewritten[kids[1]])
        elif kind == KIND_OR:
            rewritten[i] = Or(rewritten[kids[0]], rewritten[kids[1]])
        elif kind == KIND_IMPLIES:
            rewritten[i] = Or(Not(rewritten[kids[0]]), rewritten[kids[1]])
        elif kind == KIND_DIAMOND:
            rewritten[i] = Diamond(rewritten[kids[0]], index=payloads[i][0])
        elif kind == KIND_GRADED:
            grade, index = payloads[i]
            rewritten[i] = GradedDiamond(rewritten[kids[0]], grade=grade, index=index)
        else:  # KIND_BOX
            rewritten[i] = Not(Diamond(Not(rewritten[kids[0]]), index=payloads[i][0]))
    return rewritten[formula.node_id]


def _ordered_subformulas(formula: Formula) -> list[Formula]:
    """All distinct subformulas, children before parents (pool id order)."""
    pool = formula_pool()
    nodes = pool.nodes
    return [nodes[i] for i in pool.reachable_ids(formula.node_id)]


def _validate_modal_indices(
    modal: list[Formula], problem_class: ProblemClass
) -> None:
    """Reject modality indices (and grades) the class cannot realise."""
    sees_in = problem_class.model.receive is ReceiveMode.VECTOR
    sees_out = problem_class.model.send is SendMode.PORT
    for phi in modal:
        index = phi.index
        if index is None:
            index = (STAR, STAR)
        if not (isinstance(index, tuple) and len(index) == 2):
            raise ValueError(f"modality index {phi.index!r} must be a pair (i, j)")
        in_part, out_part = index
        if sees_in and in_part == STAR and problem_class not in (
            ProblemClass.MV,
            ProblemClass.SV,
        ):
            raise ValueError(
                f"class {problem_class} formulas must name the input port, got {phi.index!r}"
            )
        if not sees_in and in_part != STAR:
            raise ValueError(
                f"class {problem_class} has no input-port information, got index {phi.index!r}"
            )
        if not sees_out and out_part != STAR:
            raise ValueError(
                f"class {problem_class} has no output-port information, got index {phi.index!r}"
            )
        if sees_out and out_part == STAR:
            raise ValueError(
                f"class {problem_class} formulas must name the output port, got {phi.index!r}"
            )
        if (
            isinstance(phi, GradedDiamond)
            and phi.grade > 1
            and problem_class in (ProblemClass.SV, ProblemClass.SB)
        ):
            raise ValueError(
                f"class {problem_class} algorithms cannot count; "
                f"graded diamond {phi} is not allowed"
            )


class FormulaAlgorithm(Algorithm):
    """The seed local algorithm realising a modal formula (reference oracle).

    Parameters
    ----------
    formula:
        The formula to evaluate.  Its modality indices must match the class:
        pairs ``(i, j)`` for VV/VVc, ``('*', j)`` for MV/SV, ``(i, '*')`` for
        VB, and ``('*', '*')`` (or ``None``) for MB/SB.  Graded diamonds are
        only meaningful for the Multiset classes (MV, MB) -- and for the
        port-aware classes where each relation has at most one successor; they
        are rejected for SV and SB, whose algorithms cannot count.
    problem_class:
        The problem class whose model the algorithm must belong to.
    """

    model: ClassVar[Model]  # set per instance below

    def __init__(self, formula: Formula, problem_class: ProblemClass) -> None:
        self._original = formula
        self._formula = _normalise(formula)
        self._class = problem_class
        self.model = problem_class.model
        self._subformulas = _ordered_subformulas(self._formula)
        self._position = {phi: index for index, phi in enumerate(self._subformulas)}
        self._modal = [
            phi for phi in self._subformulas if isinstance(phi, (Diamond, GradedDiamond))
        ]
        # Positions (in the payload) of the operands whose truth values are shipped.
        operand_positions: list[int] = []
        for phi in self._modal:
            position = self._position[phi.operand]
            if position not in operand_positions:
                operand_positions.append(position)
        self._payload_positions = tuple(operand_positions)
        self._payload_slot = {position: slot for slot, position in enumerate(self._payload_positions)}
        _validate_modal_indices(self._modal, self._class)

    # ------------------------------------------------------------------ #
    # Public metadata
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return f"FormulaAlgorithm[{self._class}]({self._original})"

    @property
    def formula(self) -> Formula:
        return self._original

    @property
    def problem_class(self) -> ProblemClass:
        return self._class

    @property
    def running_time_bound(self) -> int:
        """The guaranteed bound ``md(psi) + 1`` on the number of rounds."""
        return modal_depth(self._formula) + 1

    # ------------------------------------------------------------------ #
    # Three-valued evaluation helpers
    # ------------------------------------------------------------------ #

    def _boolean_fixpoint(self, values: list[Any], degree: int) -> None:
        """Resolve propositional structure as far as possible, in place."""
        changed = True
        while changed:
            changed = False
            for position, phi in enumerate(self._subformulas):
                if values[position] != UNDEFINED:
                    continue
                new_value: Any = UNDEFINED
                if isinstance(phi, Prop):
                    new_value = 1 if phi.name == degree_proposition(degree) else 0
                elif isinstance(phi, Top):
                    new_value = 1
                elif isinstance(phi, Bottom):
                    new_value = 0
                elif isinstance(phi, Not):
                    child = values[self._position[phi.operand]]
                    if child != UNDEFINED:
                        new_value = 1 - child
                elif isinstance(phi, And):
                    left = values[self._position[phi.left]]
                    right = values[self._position[phi.right]]
                    if 0 in (left, right):
                        new_value = 0
                    elif left == 1 and right == 1:
                        new_value = 1
                elif isinstance(phi, Or):
                    left = values[self._position[phi.left]]
                    right = values[self._position[phi.right]]
                    if 1 in (left, right):
                        new_value = 1
                    elif left == 0 and right == 0:
                        new_value = 0
                if new_value != UNDEFINED:
                    values[position] = new_value
                    changed = True

    def _state(self, degree: int, values: list[Any]) -> Any:
        # A node halts only once *every* subformula is resolved (which happens
        # at round md(psi) for every node simultaneously).  Halting as soon as
        # the root value is known would be premature: a halted node sends
        # ``m0``, yet its neighbours may still need their values of deeper
        # subformulas in later rounds.
        if all(value != UNDEFINED for value in values):
            return Output(values[self._position[self._formula]])
        return (degree, tuple(values))

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        values: list[Any] = [UNDEFINED] * len(self._subformulas)
        self._boolean_fixpoint(values, degree)
        return self._state(degree, values)

    def _payload(self, values: tuple[Any, ...]) -> tuple[Any, ...]:
        return tuple(values[position] for position in self._payload_positions)

    def send(self, state: Any, port: int) -> Any:
        degree, values = state
        if self.model.send is SendMode.BROADCAST:
            return self._payload(values)
        return (port, self._payload(values))

    def broadcast(self, state: Any) -> Any:
        _degree, values = state
        return self._payload(values)

    def _payload_value(self, message: Any, operand_position: int) -> Any:
        """Read the operand's truth value out of a received payload."""
        if message == NO_MESSAGE or message is None:
            return 0
        payload = message
        if self.model.send is SendMode.PORT:
            _port, payload = message
        slot = self._payload_slot[operand_position]
        return payload[slot]

    def _message_out_port(self, message: Any) -> int | None:
        if message == NO_MESSAGE or message is None:
            return None
        if self.model.send is SendMode.PORT:
            return message[0]
        return None

    def _resolve_modal(self, phi: Formula, degree: int, previous: tuple[Any, ...], received: Any) -> Any:
        # The gate uses the *previous* state: a modal subformula may only be
        # resolved once its operand was already known in the previous round,
        # because the received payloads carry the senders' previous-round
        # values (this is the paper's condition "f(theta) != U").
        operand_position = self._position[phi.operand]
        if previous[operand_position] == UNDEFINED:
            return UNDEFINED
        grade = phi.grade if isinstance(phi, GradedDiamond) else 1
        index = phi.index if phi.index is not None else (STAR, STAR)
        in_part, out_part = index

        def operand_true(message: Any) -> bool:
            return self._payload_value(message, operand_position) == 1

        receive = self.model.receive
        if receive is ReceiveMode.VECTOR:
            # received is the vector of messages indexed by input port.
            if in_part == STAR:
                candidates = list(received)
            else:
                if in_part > degree:
                    return 1 if grade == 0 else 0
                candidates = [received[in_part - 1]]
            count = 0
            for message in candidates:
                if message == NO_MESSAGE:
                    continue
                if out_part != STAR and self._message_out_port(message) != out_part:
                    continue
                if operand_true(message):
                    count += 1
            return 1 if count >= grade else 0
        if receive is ReceiveMode.MULTISET:
            count = 0
            for message, multiplicity in received.counts().items():
                if message == NO_MESSAGE:
                    continue
                if out_part != STAR and self._message_out_port(message) != out_part:
                    continue
                if operand_true(message):
                    count += multiplicity
            return 1 if count >= grade else 0
        # Set semantics: existence only.
        exists = any(
            message != NO_MESSAGE
            and (out_part == STAR or self._message_out_port(message) == out_part)
            and operand_true(message)
            for message in received
        )
        if grade == 0:
            return 1
        return 1 if exists else 0

    def transition(self, state: Any, received: Any) -> Any:
        degree, previous = state
        values = list(previous)
        for phi in self._modal:
            position = self._position[phi]
            if values[position] != UNDEFINED:
                continue
            values[position] = self._resolve_modal(phi, degree, previous, received)
        self._boolean_fixpoint(values, degree)
        return self._state(degree, values)


# --------------------------------------------------------------------------- #
# The compiled construction
# --------------------------------------------------------------------------- #


class CompiledFormulaAlgorithm(Algorithm):
    """The formula algorithm compiled to flat tables and packed-int states.

    The normalised formula's distinct subformulas (pool DAG nodes) get dense
    positions ``0 .. P-1`` in topological order.  A node's state is
    ``(degree, packed)`` where bit ``p`` of ``packed`` is the truth value of
    position ``p`` and bit ``P + p`` records whether it is known -- the
    paper's three-valued assignment as one int.  Messages pack the shipped
    operand values the same way (two bits per payload slot), tagged with the
    out-port under port-addressed sending.  The Boolean closure is a single
    ascending sweep over the precompiled connective schedule: children have
    smaller positions, so one pass reaches the same fixpoint as the seed's
    iterate-until-stable loop.  Semantics are bit-for-bit the seed
    construction's: same gating of modal subformulas on the previous round,
    same halting rule (all positions known), same outputs.
    """

    model: ClassVar[Model]  # set per instance below

    def __init__(self, formula: Formula, problem_class: ProblemClass) -> None:
        self._original = formula
        self._formula = _normalise(formula)
        self._class = problem_class
        self.model = problem_class.model
        pool = formula_pool()
        ids = pool.reachable_ids(self._formula.node_id)
        position_of = {node_id: position for position, node_id in enumerate(ids)}
        count = len(ids)
        self._count = count
        self._value_mask = (1 << count) - 1
        self._root = position_of[self._formula.node_id]

        atoms: list[tuple[int, int, Any]] = []
        schedule: list[tuple[int, int, tuple[int, ...]]] = []
        modal: list[tuple[int, int, int, Any, Any]] = []
        modal_formulas: list[Formula] = []
        operand_positions: list[int] = []
        for node_id in ids:
            position = position_of[node_id]
            kind = pool.kinds[node_id]
            kids = tuple(position_of[child] for child in pool.children[node_id])
            if kind in (KIND_PROP, KIND_TOP, KIND_BOTTOM):
                payload = pool.payloads[node_id][0] if kind == KIND_PROP else None
                atoms.append((position, kind, payload))
            elif kind in (KIND_NOT, KIND_AND, KIND_OR):
                schedule.append((position, kind, kids))
            else:  # KIND_DIAMOND / KIND_GRADED (boxes/implications normalised away)
                phi = pool.nodes[node_id]
                modal_formulas.append(phi)
                if kind == KIND_GRADED:
                    grade, index = pool.payloads[node_id]
                else:
                    grade, index = 1, pool.payloads[node_id][0]
                in_part, out_part = index if index is not None else (STAR, STAR)
                operand = kids[0]
                if operand not in operand_positions:
                    operand_positions.append(operand)
                modal.append((position, operand, grade, in_part, out_part))
        self._atoms = tuple(atoms)
        self._schedule = tuple(schedule)
        self._modal = tuple(modal)
        self._payload_positions = tuple(operand_positions)
        self._payload_slot = {
            position: slot for slot, position in enumerate(operand_positions)
        }
        _validate_modal_indices(modal_formulas, problem_class)

    # ------------------------------------------------------------------ #
    # Public metadata
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return f"CompiledFormulaAlgorithm[{self._class}]({self._original})"

    @property
    def formula(self) -> Formula:
        return self._original

    @property
    def problem_class(self) -> ProblemClass:
        return self._class

    @property
    def subformula_count(self) -> int:
        """The number of distinct subformulas (= packed-state width in bits)."""
        return self._count

    @property
    def running_time_bound(self) -> int:
        """The guaranteed bound ``md(psi) + 1`` on the number of rounds."""
        return modal_depth(self._formula) + 1

    # ------------------------------------------------------------------ #
    # Packed three-valued evaluation
    # ------------------------------------------------------------------ #

    def _boolean_pass(self, values: int, known: int) -> tuple[int, int]:
        """One ascending sweep resolving every resolvable connective."""
        for position, kind, kids in self._schedule:
            bit = 1 << position
            if known & bit:
                continue
            if kind == KIND_NOT:
                child = kids[0]
                if known >> child & 1:
                    known |= bit
                    if not values >> child & 1:
                        values |= bit
            elif kind == KIND_AND:
                left, right = kids
                left_known = known >> left & 1
                right_known = known >> right & 1
                if (left_known and not values >> left & 1) or (
                    right_known and not values >> right & 1
                ):
                    known |= bit  # Kleene: one false child settles it
                elif left_known and right_known:
                    known |= bit
                    values |= bit
            else:  # KIND_OR
                left, right = kids
                left_known = known >> left & 1
                right_known = known >> right & 1
                if (left_known and values >> left & 1) or (
                    right_known and values >> right & 1
                ):
                    known |= bit
                    values |= bit
                elif left_known and right_known:
                    known |= bit
        return values, known

    def _wrap(self, degree: int, values: int, known: int) -> Any:
        if known == self._value_mask:  # every position known -> halt
            return Output(values >> self._root & 1)
        return (degree, values | known << self._count)

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        values = 0
        known = 0
        degree_prop = degree_proposition(degree)
        for position, kind, payload in self._atoms:
            known |= 1 << position
            if kind == KIND_TOP or (kind == KIND_PROP and payload == degree_prop):
                values |= 1 << position
        values, known = self._boolean_pass(values, known)
        return self._wrap(degree, values, known)

    def _payload(self, values: int, known: int) -> int:
        packed = 0
        for slot, position in enumerate(self._payload_positions):
            packed |= (known >> position & 1) << (2 * slot + 1)
            packed |= (values >> position & 1) << (2 * slot)
        return packed

    def send(self, state: Any, port: int) -> Any:
        degree, packed = state
        payload = self._payload(packed & self._value_mask, packed >> self._count)
        if self.model.send is SendMode.BROADCAST:
            return payload
        return (port, payload)

    def broadcast(self, state: Any) -> Any:
        _degree, packed = state
        return self._payload(packed & self._value_mask, packed >> self._count)

    def _operand_true(self, message: Any, slot: int) -> bool:
        """Whether the sender knew the operand true (m0 counts as false)."""
        if message == NO_MESSAGE or message is None:
            return False
        payload = message
        if self.model.send is SendMode.PORT:
            payload = message[1]
        return payload >> (2 * slot) & 3 == 3  # known and true

    def _message_out_port(self, message: Any) -> int | None:
        if message == NO_MESSAGE or message is None:
            return None
        if self.model.send is SendMode.PORT:
            return message[0]
        return None

    def _resolve_modal(
        self, entry: tuple, degree: int, received: Any
    ) -> int:
        """The 0/1 value of one modal position (its gate already passed)."""
        _position, operand, grade, in_part, out_part = entry
        slot = self._payload_slot[operand]
        receive = self.model.receive
        if receive is ReceiveMode.VECTOR:
            if in_part == STAR:
                candidates = received
            else:
                if in_part > degree:
                    return 1 if grade == 0 else 0
                candidates = (received[in_part - 1],)
            count = 0
            for message in candidates:
                if message == NO_MESSAGE:
                    continue
                if out_part != STAR and self._message_out_port(message) != out_part:
                    continue
                if self._operand_true(message, slot):
                    count += 1
            return 1 if count >= grade else 0
        if receive is ReceiveMode.MULTISET:
            count = 0
            for message, multiplicity in received.counts().items():
                if message == NO_MESSAGE:
                    continue
                if out_part != STAR and self._message_out_port(message) != out_part:
                    continue
                if self._operand_true(message, slot):
                    count += multiplicity
            return 1 if count >= grade else 0
        # Set semantics: existence only.
        if grade == 0:
            return 1
        exists = any(
            message != NO_MESSAGE
            and (out_part == STAR or self._message_out_port(message) == out_part)
            and self._operand_true(message, slot)
            for message in received
        )
        return 1 if exists else 0

    def transition(self, state: Any, received: Any) -> Any:
        degree, packed = state
        count = self._count
        prev_known = packed >> count
        values = packed & self._value_mask
        known = prev_known
        for entry in self._modal:
            position = entry[0]
            if prev_known >> position & 1:
                continue
            # The gate uses the *previous* round's knowledge of the operand:
            # received payloads carry the senders' previous-round values
            # (the paper's condition "f(theta) != U").
            if not prev_known >> entry[1] & 1:
                continue
            known |= 1 << position
            if self._resolve_modal(entry, degree, received):
                values |= 1 << position
        values, known = self._boolean_pass(values, known)
        return self._wrap(degree, values, known)


#: Formula-algorithm backends selectable by the engine knob (registry order).
FORMULA_ENGINES = tuple(engine_names(requires={"logic"}))


def algorithm_for_formula(
    formula: Formula, problem_class: ProblemClass, engine: str = "compiled"
) -> Algorithm:
    """The local algorithm realising ``formula`` in ``problem_class``.

    ``engine="compiled"`` returns the packed-int
    :class:`CompiledFormulaAlgorithm`; ``engine="reference"`` the seed
    :class:`FormulaAlgorithm`, kept as the differential oracle.
    ``engine="vector"`` shares the compiled realisation: the emitted
    algorithm *is* the per-node scalar form the vector execution kernel
    then runs batched, so there is no separate construction to vectorize.
    Both raise ``ValueError`` on modality indices the class cannot realise.
    """
    engine = check_engine(engine, "algorithm_for_formula")
    if engine == "reference":
        return FormulaAlgorithm(formula, problem_class)
    return CompiledFormulaAlgorithm(formula, problem_class)


__all__ = [
    "CompiledFormulaAlgorithm",
    "FormulaAlgorithm",
    "FORMULA_ENGINES",
    "UNDEFINED",
    "algorithm_for_formula",
]
