"""Kripke encodings of port-numbered graphs (Section 4.3).

Given a graph ``G`` and a port numbering ``p``, the paper defines accessibility
relations

* ``R(i, j) = {(u, v) : p((v, j)) = (u, i)}`` -- ``v`` sends through its output
  port ``j`` and the message arrives at input port ``i`` of ``u``;
* ``R(i, *)``, ``R(*, j)``, ``R(*, *)`` -- unions hiding the output-port or the
  input-port component.

Four Kripke models are built from these relations, one per amount of port
information available to a model:

==========  =====================  ================================
Variant     Indices                Captured classes (Theorem 2)
==========  =====================  ================================
``K++``     ``[Δ] x [Δ]``          VVc(1), VV(1)  (MML)
``K-+``     ``{*} x [Δ]``          MV(1) (GMML), SV(1) (MML)
``K+-``     ``[Δ] x {*}``          VB(1) (MML)
``K--``     ``{(*, *)}``           MB(1) (GML), SB(1) (ML)
==========  =====================  ================================

The valuation assigns to each node the proposition ``deg<k>`` for its degree
``k`` (the paper's ``q_k``).
"""

from __future__ import annotations

import enum

from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering, consistent_port_numbering
from repro.logic.kripke import KripkeModel
from repro.machines.models import ProblemClass

#: The wildcard component of a relation index.
STAR = "*"


class KripkeVariant(enum.Enum):
    """The four encodings of Section 4.3."""

    FULL = "++"
    NO_INPUT_PORTS = "-+"
    NO_OUTPUT_PORTS = "+-"
    NEITHER = "--"

    @property
    def sees_input_ports(self) -> bool:
        return self in (KripkeVariant.FULL, KripkeVariant.NO_OUTPUT_PORTS)

    @property
    def sees_output_ports(self) -> bool:
        return self in (KripkeVariant.FULL, KripkeVariant.NO_INPUT_PORTS)


#: Which encoding captures which problem class (Theorem 2).
_CLASS_TO_VARIANT: dict[ProblemClass, KripkeVariant] = {
    ProblemClass.VVC: KripkeVariant.FULL,
    ProblemClass.VV: KripkeVariant.FULL,
    ProblemClass.MV: KripkeVariant.NO_INPUT_PORTS,
    ProblemClass.SV: KripkeVariant.NO_INPUT_PORTS,
    ProblemClass.VB: KripkeVariant.NO_OUTPUT_PORTS,
    ProblemClass.MB: KripkeVariant.NEITHER,
    ProblemClass.SB: KripkeVariant.NEITHER,
}


def variant_for_class(problem_class: ProblemClass) -> KripkeVariant:
    """The Kripke encoding on which the given class is captured (Theorem 2)."""
    return _CLASS_TO_VARIANT[problem_class]


def degree_proposition(degree: int) -> str:
    """The proposition symbol ``q_degree`` asserting that a node has this degree."""
    return f"deg{degree}"


def input_proposition(value: object) -> str:
    """The proposition symbol asserting that a node carries local input ``value``.

    Section 3.4 extends the framework to labelled graphs ``(V, E, f)``; the
    natural Kripke encoding simply adds one proposition per input value.
    """
    return f"in_{value}"


def signature_indices(variant: KripkeVariant, delta: int) -> frozenset:
    """The modality index set ``I^Delta_{a,b}`` of the encoding."""
    ports = range(1, delta + 1)
    if variant is KripkeVariant.FULL:
        return frozenset((i, j) for i in ports for j in ports)
    if variant is KripkeVariant.NO_INPUT_PORTS:
        return frozenset((STAR, j) for j in ports)
    if variant is KripkeVariant.NO_OUTPUT_PORTS:
        return frozenset((i, STAR) for i in ports)
    return frozenset({(STAR, STAR)})


def kripke_encoding(
    graph: Graph,
    numbering: PortNumbering | None = None,
    variant: KripkeVariant = KripkeVariant.FULL,
    delta: int | None = None,
    inputs: dict[Node, object] | None = None,
) -> KripkeModel:
    """The Kripke model ``K_{a,b}(G, p)`` of the given variant.

    The worlds are the nodes of the graph; the relations are the ``R`` indexed
    families listed in the module docstring; the valuation marks each node
    with its degree proposition.  ``delta`` defaults to the maximum degree of
    the graph and controls which indices appear (indices whose relation is
    empty are still present, as in the paper's signature ``I^Delta_{a,b}``).

    When ``inputs`` is given (labelled graphs, Section 3.4), each node is
    additionally marked with :func:`input_proposition` of its local input.
    """
    if numbering is None:
        numbering = consistent_port_numbering(graph)
    elif numbering.graph != graph:
        raise ValueError("the port numbering belongs to a different graph")
    if delta is None:
        delta = graph.max_degree()

    # Base relations R(i, j): v --(out-port j)--> u's in-port i gives (u, v).
    base: dict[tuple[int, int], list[tuple[Node, Node]]] = {
        (i, j): [] for i in range(1, delta + 1) for j in range(1, delta + 1)
    }
    for v in graph.nodes:
        for j in range(1, graph.degree(v) + 1):
            u, i = numbering.apply(v, j)
            base[(i, j)].append((u, v))

    relations: dict[tuple, list[tuple[Node, Node]]] = {}
    if variant is KripkeVariant.FULL:
        relations = {index: pairs for index, pairs in base.items()}
    elif variant is KripkeVariant.NO_INPUT_PORTS:
        for j in range(1, delta + 1):
            merged: list[tuple[Node, Node]] = []
            for i in range(1, delta + 1):
                merged.extend(base[(i, j)])
            relations[(STAR, j)] = merged
    elif variant is KripkeVariant.NO_OUTPUT_PORTS:
        for i in range(1, delta + 1):
            merged = []
            for j in range(1, delta + 1):
                merged.extend(base[(i, j)])
            relations[(i, STAR)] = merged
    else:
        merged = []
        for pairs in base.values():
            merged.extend(pairs)
        relations[(STAR, STAR)] = merged

    valuation: dict[str, list[Node]] = {
        degree_proposition(k): [node for node in graph.nodes if graph.degree(node) == k]
        for k in range(1, delta + 1)
    }
    if inputs is not None:
        for node, value in inputs.items():
            valuation.setdefault(input_proposition(value), []).append(node)
    return KripkeModel(graph.nodes, relations, valuation)
