"""Compiling local algorithms into modal formulas (Theorem 2, parts 3-4).

Given a finite-state local algorithm ``A`` (a :class:`~repro.machines.
state_machine.FiniteStateMachine`) of one of the seven classes and its running
time ``T``, this module constructs a formula ``psi`` of the matching logic
such that for every graph ``G`` of maximum degree at most ``Delta`` and every
port numbering ``p``, the extension of ``psi`` in the corresponding Kripke
encoding of ``(G, p)`` equals the set of nodes on which ``A`` outputs 1.  The
modal depth of ``psi`` equals ``T``, mirroring the paper's correspondence
between running time and modal depth (Table 3).

The construction follows Tables 4 and 5: formulas ``phi_{z,t}`` ("the local
state at time ``t`` is ``z``"), ``theta_{m,j,t}`` ("the node sends ``m`` to
port ``j`` in round ``t``") and diamond formulas describing the received
messages are built by recursion on ``t``.  The received-message descriptions
are enumerated explicitly (vectors, multisets or sets of messages, depending
on the class), so the *tree* size of the output formula grows quickly with
``Delta``, ``|M|`` and ``T`` -- exactly as in the paper, where the
construction is syntactic.  The emitted formula, however, is a node of the
hash-consed pool (:mod:`repro.logic.syntax`): the ``phi``/``theta`` subterms
that every spec repeats are memoised (``theta`` by ``(message, port, time)``
on top of the pool's structural dedup), so the construction materialises one
DAG node per *distinct* subterm.  Machines whose Table 4/5 tree has millions
of nodes compile to DAGs orders of magnitude smaller and evaluate on the
compiled bitset checker without ever expanding the tree.

Infeasible coordinates fail fast instead of hanging:
:func:`predict_formula_nodes` computes (exactly, with big ints) the number
of received-message specs the construction would enumerate and an upper
estimate of the pool nodes it would allocate; :func:`formula_for_machine`
raises :class:`FormulaSizeError` carrying that prediction when it exceeds
the ``max_formula_nodes`` budget, and a live pool-growth guard backstops the
estimate during construction.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence
from typing import Any

from repro.logic.syntax import (
    And,
    Diamond,
    Formula,
    GradedDiamond,
    Not,
    Prop,
    conjunction,
    disjunction,
    formula_pool,
)
from repro.machines.models import ProblemClass, ReceiveMode, SendMode
from repro.machines.state_machine import FiniteStateMachine
from repro.modal.encoding import STAR, degree_proposition

#: Default budget on the pool nodes one compilation may allocate.  Roughly
#: bounds both construction time and memory (a pool node costs a few hundred
#: bytes); raise it explicitly for heroic instances.
DEFAULT_MAX_FORMULA_NODES = 500_000


class FormulaSizeError(ValueError):
    """The Table 4/5 construction would exceed its node budget.

    Attributes
    ----------
    predicted_nodes:
        Upper estimate of the pool nodes the construction would allocate
        (exact spec enumeration, per-spec node cost over-approximated).
    specs:
        The exact number of received-message specs that would be enumerated.
    budget:
        The ``max_formula_nodes`` value that was exceeded.
    """

    def __init__(self, predicted_nodes: int, specs: int, budget: int, detail: str) -> None:
        super().__init__(
            f"the Theorem 2 construction would allocate ~{predicted_nodes} formula "
            f"nodes over {specs} received-message specs, exceeding the budget of "
            f"{budget} ({detail}); raise max_formula_nodes (or pass None) to force it"
        )
        self.predicted_nodes = predicted_nodes
        self.specs = specs
        self.budget = budget


def _degree_formula(degree: int, delta: int) -> Formula:
    """The formula asserting that a node has the given degree."""
    if degree >= 1:
        return Prop(degree_proposition(degree))
    return conjunction(Not(Prop(degree_proposition(k))) for k in range(1, delta + 1))


def _sorted_messages(machine: FiniteStateMachine) -> list[Any]:
    return sorted(machine.messages | {machine.no_message}, key=repr)


# ---------------------------------------------------------------------- #
# Received-message specifications
#
# A *spec* describes one possible way the messages of a single round can be
# delivered to a node of degree d, at the level of detail visible to the
# class.  Each spec yields (a) the padded message vector handed to delta and
# (b) the modal condition formula asserting that exactly this spec occurred.
# ---------------------------------------------------------------------- #


def _vector_specs(messages: Sequence[Any], delta: int, degree: int) -> Iterator[tuple]:
    """Specs for the Vector classes: one (message, sender out-port) pair per in-port."""
    yield from itertools.product(
        itertools.product(messages, range(1, delta + 1)), repeat=degree
    )


def _broadcast_vector_specs(messages: Sequence[Any], degree: int) -> Iterator[tuple]:
    """Specs for VB: one message per in-port (no out-port information)."""
    yield from itertools.product(messages, repeat=degree)


def _profile_specs(cells: Sequence[Any], degree: int) -> Iterator[tuple]:
    """Specs for the Multiset classes: a multiset of ``degree`` cells."""
    yield from itertools.combinations_with_replacement(cells, degree)


def _set_specs(cells: Sequence[Any], degree: int) -> Iterator[tuple]:
    """Specs for the Set classes: a non-empty set of at most ``degree`` cells."""
    if degree == 0:
        yield ()
        return
    for size in range(1, degree + 1):
        yield from itertools.combinations(cells, size)


def _pad(real: list[Any], degree: int, delta: int, no_message: Any) -> tuple[Any, ...]:
    """Extend the delivered messages to a padded vector of length ``delta``."""
    if len(real) < degree:
        # Set semantics: duplicate an arbitrary delivered message so that the
        # vector has exactly ``degree`` real entries; a set-invariant delta
        # cannot tell the difference.
        filler = real[0] if real else no_message
        real = real + [filler] * (degree - len(real))
    return tuple(real) + (no_message,) * (delta - degree)


# ---------------------------------------------------------------------- #
# Size prediction
# ---------------------------------------------------------------------- #


def _spec_count(model: Any, m: int, delta: int, degree: int) -> int:
    """Exactly how many received-message specs one ``(state, degree)`` pair has."""
    receive, send = model.receive, model.send
    if receive is ReceiveMode.VECTOR and send is SendMode.PORT:
        return (m * delta) ** degree
    if receive is ReceiveMode.VECTOR and send is SendMode.BROADCAST:
        return m**degree
    if receive is ReceiveMode.MULTISET and send is SendMode.PORT:
        return math.comb(m * delta + degree - 1, degree)
    if receive is ReceiveMode.MULTISET and send is SendMode.BROADCAST:
        return math.comb(m + degree - 1, degree)
    cells = m * delta if send is SendMode.PORT else m
    if degree == 0:
        return 1
    return sum(math.comb(cells, size) for size in range(1, degree + 1))


def predict_formula_nodes(
    machine: FiniteStateMachine, problem_class: ProblemClass, running_time: int
) -> tuple[int, int]:
    """``(predicted_nodes, specs)`` for the Table 4/5 construction.

    ``specs`` is the exact number of received-message specs the construction
    enumerates (the quantity that explodes in ``Delta``, ``|M|`` and ``T``);
    ``predicted_nodes`` multiplies it by an upper estimate of the pool nodes
    allocated per spec, plus the memoised ``theta`` table.  Both are plain
    big-int arithmetic -- cheap even when the answer has dozens of digits.
    """
    delta = machine.delta_bound
    model = problem_class.model
    m = len(machine.messages | {machine.no_message})
    states = len(machine.intermediate_states) + len(machine.stopping_states)
    intermediate = len(machine.intermediate_states)
    specs_per_degree = [_spec_count(model, m, delta, d) for d in range(delta + 1)]
    specs = running_time * intermediate * sum(specs_per_degree)
    if model.receive is ReceiveMode.SET:
        cells = m * delta if model.send is SendMode.PORT else m
        per_spec = [3 * cells + 4] * (delta + 1)
    else:
        per_spec = [2 * d + 4 for d in range(delta + 1)]
    nodes = running_time * intermediate * sum(
        count * cost for count, cost in zip(specs_per_degree, per_spec)
    )
    # theta_{m,j,t}: a disjunction over states, memoised per (message, port, time).
    ports = delta if model.send is SendMode.PORT else 1
    nodes += m * ports * max(running_time, 1) * (states + 1)
    # Degree formulas, initial phi layer, final disjunction.
    nodes += (delta + 2) * (states + delta + 2)
    return nodes, specs


# ---------------------------------------------------------------------- #
# The main construction
# ---------------------------------------------------------------------- #


def formula_for_machine(
    machine: FiniteStateMachine,
    problem_class: ProblemClass,
    running_time: int,
    accepting_output: Any = 1,
    max_formula_nodes: int | None = DEFAULT_MAX_FORMULA_NODES,
) -> Formula:
    """The formula ``psi`` capturing the algorithm's output-1 set (Theorem 2).

    Parameters
    ----------
    machine:
        A finite-state machine that belongs to ``problem_class``'s algorithm
        model (its ``delta`` must be invariant under the class's projection of
        the received vector; this is assumed, not checked here -- see
        :mod:`repro.machines.inspection`).
    problem_class:
        The class determining both the logic and the Kripke encoding.
    running_time:
        A round bound ``T`` by which the machine halts on every admissible
        input; the resulting formula has modal depth ``T``.
    accepting_output:
        The local output whose indicator the formula defines (default 1).
    max_formula_nodes:
        Budget on the pool nodes the construction may allocate.  Infeasible
        ``(Delta, |M|, T)`` coordinates raise :class:`FormulaSizeError`
        (with the exact spec count and the predicted node count) *before*
        enumerating anything; a live pool-growth guard backstops the
        prediction during construction.  ``None`` disables both checks.
    """
    if running_time < 0:
        raise ValueError("running_time must be non-negative")
    if max_formula_nodes is not None:
        predicted, spec_total = predict_formula_nodes(machine, problem_class, running_time)
        if predicted > max_formula_nodes:
            raise FormulaSizeError(
                predicted, spec_total, max_formula_nodes,
                f"Delta={machine.delta_bound}, |M|={len(machine.messages)}, "
                f"T={running_time}, class={problem_class}",
            )
    pool = formula_pool()
    pool_start = len(pool)
    delta = machine.delta_bound
    model = problem_class.model
    messages = _sorted_messages(machine)
    intermediate = sorted(machine.intermediate_states, key=repr)
    stopping = sorted(machine.stopping_states, key=repr)
    all_states = intermediate + stopping

    # phi[(state, t)]: "the node is in this state at time t".
    phi: dict[tuple[Any, int], Formula] = {}
    for state in all_states:
        matching_degrees = [
            degree
            for degree in range(0, delta + 1)
            if machine.initial_states.get(degree) == state
        ]
        phi[(state, 0)] = disjunction(
            _degree_formula(degree, delta) for degree in matching_degrees
        )

    def outgoing_message(state: Any, port: int) -> Any:
        if state in machine.stopping_states:
            return machine.no_message
        return machine.message_table(state, port)

    theta_cache: dict[tuple[Any, int, int], Formula] = {}

    def theta(message: Any, port: int, time: int) -> Formula:
        """``theta_{m,j,t}``: the node sends ``message`` to ``port`` in round ``time``.

        Memoised per ``(message, port, time)``: every spec of a round refers
        to the same theta family, so each member is built once and every
        later reference is a pooled-node reuse.
        """
        key = (message, port, time)
        result = theta_cache.get(key)
        if result is None:
            result = theta_cache[key] = disjunction(
                phi[(state, time - 1)]
                for state in all_states
                if outgoing_message(state, port) == message
            )
        return result

    def next_state(state: Any, padded: tuple[Any, ...]) -> Any:
        if state in machine.stopping_states:
            return state
        return machine.transition_table(state, padded)

    def spec_condition_and_vector(
        spec: tuple, degree: int, time: int
    ) -> tuple[Formula, tuple[Any, ...]]:
        """The condition formula and the padded vector described by ``spec``."""
        receive, send = model.receive, model.send
        if receive is ReceiveMode.VECTOR and send is SendMode.PORT:
            condition = conjunction(
                Diamond(theta(message, out_port, time), index=(in_port, out_port))
                for in_port, (message, out_port) in enumerate(spec, start=1)
            )
            vector = _pad([message for message, _ in spec], degree, delta, machine.no_message)
            return condition, vector
        if receive is ReceiveMode.VECTOR and send is SendMode.BROADCAST:
            condition = conjunction(
                Diamond(theta(message, 1, time), index=(in_port, STAR))
                for in_port, message in enumerate(spec, start=1)
            )
            vector = _pad(list(spec), degree, delta, machine.no_message)
            return condition, vector
        if receive is ReceiveMode.MULTISET and send is SendMode.PORT:
            counts: dict[tuple[Any, int], int] = {}
            for cell in spec:
                counts[cell] = counts.get(cell, 0) + 1
            condition = conjunction(
                GradedDiamond(theta(message, out_port, time), grade=count, index=(STAR, out_port))
                for (message, out_port), count in sorted(counts.items(), key=repr)
            )
            vector = _pad([message for message, _ in spec], degree, delta, machine.no_message)
            return condition, vector
        if receive is ReceiveMode.MULTISET and send is SendMode.BROADCAST:
            message_counts: dict[Any, int] = {}
            for message in spec:
                message_counts[message] = message_counts.get(message, 0) + 1
            condition = conjunction(
                GradedDiamond(theta(message, 1, time), grade=count, index=(STAR, STAR))
                for message, count in sorted(message_counts.items(), key=repr)
            )
            vector = _pad(list(spec), degree, delta, machine.no_message)
            return condition, vector
        if receive is ReceiveMode.SET and send is SendMode.PORT:
            present = set(spec)
            absent = [
                cell
                for cell in itertools.product(messages, range(1, delta + 1))
                if cell not in present
            ]
            condition = conjunction(
                itertools.chain(
                    (
                        Diamond(theta(message, out_port, time), index=(STAR, out_port))
                        for message, out_port in sorted(present, key=repr)
                    ),
                    (
                        Not(Diamond(theta(message, out_port, time), index=(STAR, out_port)))
                        for message, out_port in absent
                    ),
                )
            )
            vector = _pad([message for message, _ in spec], degree, delta, machine.no_message)
            return condition, vector
        # Set receive, broadcast send (SB).
        present_messages = set(spec)
        absent_messages = [message for message in messages if message not in present_messages]
        condition = conjunction(
            itertools.chain(
                (
                    Diamond(theta(message, 1, time), index=(STAR, STAR))
                    for message in sorted(present_messages, key=repr)
                ),
                (
                    Not(Diamond(theta(message, 1, time), index=(STAR, STAR)))
                    for message in absent_messages
                ),
            )
        )
        vector = _pad(list(spec), degree, delta, machine.no_message)
        return condition, vector

    def specs_for_degree(degree: int) -> Iterator[tuple]:
        receive, send = model.receive, model.send
        if receive is ReceiveMode.VECTOR and send is SendMode.PORT:
            return _vector_specs(messages, delta, degree)
        if receive is ReceiveMode.VECTOR and send is SendMode.BROADCAST:
            return _broadcast_vector_specs(messages, degree)
        if receive is ReceiveMode.MULTISET and send is SendMode.PORT:
            cells = list(itertools.product(messages, range(1, delta + 1)))
            return _profile_specs(cells, degree)
        if receive is ReceiveMode.MULTISET and send is SendMode.BROADCAST:
            return _profile_specs(messages, degree)
        if receive is ReceiveMode.SET and send is SendMode.PORT:
            cells = list(itertools.product(messages, range(1, delta + 1)))
            return _set_specs(cells, degree)
        return _set_specs(messages, degree)

    # Build phi for t = 1..T.
    for time in range(1, running_time + 1):
        accumulator: dict[Any, list[Formula]] = {state: [] for state in all_states}
        # A halted node stays halted, no matter what it receives.
        for state in stopping:
            accumulator[state].append(phi[(state, time - 1)])
        for state in intermediate:
            for degree in range(0, delta + 1):
                degree_guard = _degree_formula(degree, delta)
                for spec in specs_for_degree(degree):
                    condition, vector = spec_condition_and_vector(spec, degree, time)
                    successor = next_state(state, vector)
                    accumulator[successor].append(
                        And(And(degree_guard, phi[(state, time - 1)]), condition)
                    )
                if max_formula_nodes is not None:
                    grown = len(pool) - pool_start
                    if grown > max_formula_nodes:
                        # Backstop for a prediction that underestimated.
                        raise FormulaSizeError(
                            grown, 0, max_formula_nodes,
                            f"live pool growth at t={time}, state={state!r}, "
                            f"degree={degree}",
                        )
        for state in all_states:
            phi[(state, time)] = disjunction(accumulator[state])

    return disjunction(
        phi[(state, running_time)]
        for state in stopping
        if machine.output_map(state) == accepting_output
    )
