"""Adapters between algorithm models: the trivial containments of Figure 5a.

A Set algorithm *is* (after a trivial wrapping) a Multiset algorithm, a
Multiset algorithm is a Vector algorithm, and a Broadcast algorithm is a
port-addressed algorithm that happens to send the same message everywhere.
These inclusions are what makes the containments of Figure 5a "trivial"; this
module makes them executable: :func:`as_model` wraps an algorithm of a weaker
model so that it formally belongs to a stronger one while computing exactly
the same thing.

(The non-trivial direction -- simulating a *stronger* model in a *weaker* one
-- is the subject of Theorems 4, 8 and 9; see :mod:`repro.core.simulations`.)
"""

from __future__ import annotations

from typing import Any

from repro.machines.algorithm import Algorithm
from repro.machines.models import Model, ReceiveMode, SendMode


class ModelUpcast(Algorithm):
    """An algorithm of a weaker model presented as one of a stronger model.

    The wrapper projects the received messages down to the wrapped algorithm's
    receive mode and delegates message construction (replicating a broadcast
    over all ports when the target model is port-addressed).
    """

    def __init__(self, inner: Algorithm, target: Model) -> None:
        if not inner.model.is_weaker_or_equal(target):
            raise ValueError(
                f"cannot present a {inner.model} algorithm as a {target} algorithm; "
                "only weaker-to-stronger adaptations are trivial (Figure 5a)"
            )
        self._inner = inner
        self.model = target

    @property
    def name(self) -> str:
        return f"{self._inner.name}@{self.model}"

    @property
    def inner(self) -> Algorithm:
        return self._inner

    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        return self._inner.initial_state(degree)

    def initial_state_with_input(self, degree: int, local_input: Any) -> Any:
        return self._inner.initial_state_with_input(degree, local_input)

    def send(self, state: Any, port: int) -> Any:
        if self._inner.model.send is SendMode.BROADCAST:
            return self._inner.broadcast(state)
        return self._inner.send(state, port)

    def broadcast(self, state: Any) -> Any:
        return self._inner.broadcast(state)

    def _project(self, received: Any) -> Any:
        source = self.model.receive
        target = self._inner.model.receive
        if source is target:
            return received
        if source is ReceiveMode.VECTOR:
            return target.project(tuple(received))
        # source is MULTISET, target must be SET.
        return received.to_set()

    def transition(self, state: Any, received: Any) -> Any:
        return self._inner.transition(state, self._project(received))

    def is_stopping(self, state: Any) -> bool:
        return self._inner.is_stopping(state)

    def output(self, state: Any) -> Any:
        return self._inner.output(state)


def as_model(algorithm: Algorithm, target: Model) -> Algorithm:
    """Present ``algorithm`` as an algorithm of the (stronger or equal) ``target`` model."""
    if algorithm.model == target:
        return algorithm
    return ModelUpcast(algorithm, target)
