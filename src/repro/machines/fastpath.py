"""Fast-path adapter for the execution engine.

The hot loop of the engine calls ``algorithm.model.receive.project`` once per
node per round.  For the Multiset and Set receive modes the projection builds
a fresh :class:`~repro.machines.multiset.FrozenMultiset` or ``frozenset``
every time, even though synchronous executions see the *same* message vectors
over and over (constant-message algorithms, regular graphs, long quiescent
phases).  :class:`FastPathAlgorithm` wraps an algorithm and memoizes the
projection on the raw received vector, which is guaranteed safe because the
projection is a pure function of the vector and both messages and projected
views are immutable, hashable values.

The wrapper is model-agnostic: for the Vector receive mode the projection is
the identity on the already-constructed tuple, so no cache is kept at all.

With ``memoize_transitions=True`` the wrapper additionally memoizes
``initial_state(degree)`` and ``transition(state, projected)``.  The paper
defines algorithms as deterministic state machines -- ``delta`` is a
*function* ``Z x M^Delta -> Z`` (Section 1.1) -- so for any algorithm that
honours the model the memoization is unobservable; it is opt-in because a
Python implementation could in principle be impure (e.g. count its own
calls), and because history-accumulating states never repeat, where the
cache would be pure overhead.  Adversarial verification sweeps (one small
algorithm, thousands of numberings) are the intended beneficiary.
"""

from __future__ import annotations

from typing import Any

from repro.machines.algorithm import Algorithm
from repro.machines.models import ReceiveMode

_MISSING = object()


class FastPathAlgorithm:
    """A thin, engine-facing wrapper memoizing the receive-mode projection.

    The wrapper intentionally does *not* subclass :class:`Algorithm`: it is an
    internal execution-engine helper, not a model citizen.  It exposes the
    inner algorithm as :attr:`inner` and a single extra method,
    :meth:`project`, which the engine uses in place of
    ``algorithm.model.receive.project``.

    Sharing one wrapper across the executions of a batch (as
    :func:`repro.execution.engine.run_many` does) lets the cache amortize over
    an entire experiment sweep.
    """

    __slots__ = (
        "inner",
        "model",
        "_cache",
        "_project",
        "_identity",
        "_transitions",
        "_initials",
        "_sends",
        "sweep_tables",
        "vector_tables",
    )

    def __init__(self, inner: Algorithm, memoize_transitions: bool = False) -> None:
        if isinstance(inner, FastPathAlgorithm):
            inner = inner.inner
        self.inner = inner
        self.model = inner.model
        self._project = inner.model.receive.project
        self._identity = inner.model.receive is ReceiveMode.VECTOR
        self._cache: dict[Any, Any] = {}
        self._transitions: dict[Any, Any] | None = {} if memoize_transitions else None
        self._initials: dict[int, Any] | None = {} if memoize_transitions else None
        self._sends: dict[Any, Any] | None = {} if memoize_transitions else None
        # Dense-id interning tables owned by the superposed sweep executor
        # (:mod:`repro.execution.sweep`), created there on first use; kept on
        # the wrapper so successive sweeps of one algorithm share them.  The
        # NumPy vector kernel (:mod:`repro.execution.vector`) keeps its
        # array-side mirrors of the same id space in ``vector_tables``.
        self.sweep_tables: Any = None
        self.vector_tables: Any = None

    @property
    def memoizes_transitions(self) -> bool:
        return self._transitions is not None

    def __getstate__(self) -> dict:
        # Every slot besides the inner algorithm is a pure cache; drop them
        # all on pickling (the sweep tables in particular hold non-picklable
        # lazy-row builders) and rebuild empty on the other side.
        return {"inner": self.inner, "memoize": self.memoizes_transitions}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["inner"], memoize_transitions=state["memoize"])

    # ------------------------------------------------------------------ #
    # Raw cache access for the execution engine, which inlines the lookups
    # into its round loop instead of paying a method call per node-round.
    # ------------------------------------------------------------------ #

    @property
    def projects_identity(self) -> bool:
        """Whether projection is the identity (Vector receive mode)."""
        return self._identity

    @property
    def projection_cache(self) -> dict[Any, Any]:
        return self._cache

    @property
    def send_cache(self) -> dict[Any, Any] | None:
        return self._sends

    @property
    def transition_cache(self) -> dict[Any, Any] | None:
        return self._transitions

    def initial_state(self, degree: int) -> Any:
        """``z0(degree)``, memoized per degree when transition memoization is on."""
        cache = self._initials
        if cache is None:
            return self.inner.initial_state(degree)
        if degree not in cache:
            cache[degree] = self.inner.initial_state(degree)
        return cache[degree]

    def transition(self, state: Any, projected: Any) -> Any:
        """``delta(state, projected)``, memoized on the pair when enabled."""
        cache = self._transitions
        if cache is None:
            return self.inner.transition(state, projected)
        key = (state, projected)
        result = cache.get(key, _MISSING)
        if result is _MISSING:
            result = cache[key] = self.inner.transition(state, projected)
        return result

    def send(self, state: Any, port: int) -> Any:
        """``mu(state, port)``, memoized on the pair when enabled."""
        cache = self._sends
        if cache is None:
            return self.inner.send(state, port)
        key = (state, port)
        result = cache.get(key, _MISSING)
        if result is _MISSING:
            result = cache[key] = self.inner.send(state, port)
        return result

    def broadcast(self, state: Any) -> Any:
        """``mu(state)``, memoized per state when enabled."""
        cache = self._sends
        if cache is None:
            return self.inner.broadcast(state)
        result = cache.get(state, _MISSING)
        if result is _MISSING:
            result = cache[state] = self.inner.broadcast(state)
        return result

    def project(self, vector: tuple[Any, ...]) -> Any:
        """The model's view of ``vector``, memoized on repeated vectors."""
        if self._identity:
            return vector
        cache = self._cache
        projected = cache.get(vector)
        if projected is None:
            projected = cache[vector] = self._project(vector)
        return projected

    def clear_cache(self) -> None:
        """Drop every memoized value (e.g. between unrelated sweeps)."""
        self._cache.clear()
        if self._transitions is not None:
            self._transitions.clear()
        if self._initials is not None:
            self._initials.clear()
        if self._sends is not None:
            self._sends.clear()
        if self.sweep_tables is not None:
            self.sweep_tables.clear()
        if self.vector_tables is not None:
            self.vector_tables.clear()

    @property
    def cache_size(self) -> int:
        """Number of distinct received vectors memoized so far."""
        return len(self._cache)


def fast_path(
    algorithm: Algorithm | FastPathAlgorithm, memoize_transitions: bool = False
) -> FastPathAlgorithm:
    """Wrap ``algorithm`` for the engine (idempotent).

    An already-wrapped algorithm is returned as-is unless transition
    memoization is requested but absent, in which case it is re-wrapped.
    """
    if isinstance(algorithm, FastPathAlgorithm):
        if memoize_transitions and not algorithm.memoizes_transitions:
            return FastPathAlgorithm(algorithm.inner, memoize_transitions=True)
        return algorithm
    return FastPathAlgorithm(algorithm, memoize_transitions=memoize_transitions)
