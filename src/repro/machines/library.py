"""A library of finite-state machines for the Theorem 2 pipeline.

The correspondence pipeline (:mod:`repro.modal`) needs concrete
:class:`~repro.machines.state_machine.FiniteStateMachine` instances for every
problem class: the campaign ``correspondence`` workload, experiment E4, the
benchmarks and the randomized round-trip property tests all draw from here.

Every machine in this module is *delta-parametric* (built for the ``Delta``
of the graph family it will run on) and its transition function factors
through the class's view of the received vector:

* Vector classes see the padded vector itself,
* Multiset classes see it up to reordering,
* Set classes see it up to reordering and multiplicities.

Factoring through the view is exactly the invariance the Table 4/5
construction needs: the padded vector that
:func:`~repro.modal.algorithm_to_formula.formula_for_machine` rebuilds from a
received-message spec is one *representative* of the spec, so the transition
must not depend on which representative was chosen.  (Machines may still
behave degree-dependently -- the construction guards every spec with a degree
formula, mirroring how the paper's ``z0`` depends on the degree.)

:func:`reference_machine` builds the deterministic per-class workload (one or
two rounds); :func:`random_machine` builds seed-deterministic random machines
whose every table entry is an independent hash-derived choice -- the fuzzing
surface of the round-trip property tests.  Randomness is derived via SHA-256,
never :func:`hash`, so machines are identical across processes and Python
versions.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

from repro.machines.algorithm import NO_MESSAGE
from repro.machines.models import ProblemClass, ReceiveMode, SendMode
from repro.machines.state_machine import FiniteStateMachine

#: The message alphabet of the library machines (``m0`` is added implicitly).
LETTERS = ("x", "y")


def _pick(options: Sequence[Any], *parts: Any) -> Any:
    """A deterministic pseudo-random choice keyed by ``parts`` (SHA-256)."""
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return options[int.from_bytes(digest[:8], "big") % len(options)]


def class_view(problem_class: ProblemClass, padded: tuple[Any, ...]) -> Any:
    """The canonical view of a padded received vector in the class's model.

    Two padded vectors with the same view are indistinguishable to the
    class's algorithms, so any transition defined as a function of
    ``(state, class_view(...))`` is automatically a legal machine of the
    class -- and well-defined on the received-message specs of the Table 4/5
    construction.
    """
    receive = problem_class.model.receive
    if receive is ReceiveMode.VECTOR:
        return tuple(padded)
    if receive is ReceiveMode.MULTISET:
        return tuple(sorted(padded, key=repr))
    return tuple(sorted(set(padded), key=repr))


def _letter(problem_class: ProblemClass, state_letter: str, port: int) -> str:
    """The message a library machine sends: port-dependent iff the class sends
    per-port (alternating by port parity), constant under broadcast."""
    if problem_class.model.send is SendMode.PORT and port % 2 == 0:
        return LETTERS[1] if state_letter == LETTERS[0] else LETTERS[0]
    return state_letter


def _predicate(problem_class: ProblemClass, padded: tuple[Any, ...]) -> bool:
    """A class-appropriate 0/1 observable of one round of messages.

    Chosen so that each receive mode's distinguishing power is exercised:
    Set classes test membership, Multiset classes a multiplicity threshold,
    Vector classes the first input port.
    """
    receive = problem_class.model.receive
    if receive is ReceiveMode.VECTOR:
        return padded[0] == LETTERS[0] if padded else False
    if receive is ReceiveMode.MULTISET:
        return sum(1 for message in padded if message == LETTERS[0]) >= 2
    return LETTERS[0] in set(padded)


def reference_machine(
    problem_class: ProblemClass, delta: int, rounds: int = 1
) -> FiniteStateMachine:
    """The deterministic library machine of a class, for ``F(delta)``.

    ``rounds=1``: two intermediate states (chosen by degree parity), each
    node broadcasts/port-sends its state letter and halts on the class
    predicate of what it received.  ``rounds=2``: a second phase first
    records the round-1 predicate in the state, then halts on the XOR of the
    two rounds' predicates -- modal depth 2, and the instance whose fully
    expanded Table 4/5 tree is infeasible while the DAG stays small.
    """
    if delta < 1:
        raise ValueError("delta must be at least 1")
    if rounds not in (1, 2):
        raise ValueError("the reference machines are defined for 1 or 2 rounds")
    phase1 = ("a", "b")
    if rounds == 1:
        intermediate = frozenset(phase1)
    else:
        intermediate = frozenset(phase1) | {
            f"{state}{sign}" for state in phase1 for sign in "+-"
        }

    def state_letter(state: str) -> str:
        if state in phase1:
            return LETTERS[0] if state == "a" else LETTERS[1]
        return LETTERS[0] if state.endswith("+") else LETTERS[1]

    def message(state: str, port: int) -> str:
        return _letter(problem_class, state_letter(state), port)

    def transition(state: str, padded: tuple[Any, ...]) -> Any:
        held = _predicate(problem_class, padded)
        if rounds == 2 and state in phase1:
            return f"{state}{'+' if held else '-'}"
        if rounds == 2:
            return 1 if (state.endswith("+")) != held else 0
        return 1 if held else 0

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=intermediate,
        stopping_states=frozenset({0, 1}),
        messages=frozenset(LETTERS),
        initial_states={degree: phase1[degree % 2] for degree in range(delta + 1)},
        message_table=message,
        transition_table=transition,
        no_message=NO_MESSAGE,
    )


def random_machine(
    problem_class: ProblemClass, delta: int, seed: int
) -> FiniteStateMachine:
    """A seed-deterministic random one-round machine of the class.

    Every table entry -- the initial state of each degree, the message of
    each ``(state, port)`` (port-independent under broadcast), and the
    stopping state reached from each ``(state, view)`` -- is an independent
    hash-derived choice, so sweeping seeds fuzzes the whole Theorem 2
    construction.  The transition factors through :func:`class_view`, which
    is what makes the machine a legal member of the class.
    """
    if delta < 1:
        raise ValueError("delta must be at least 1")
    states = ("a", "b")

    def message(state: str, port: int) -> str:
        if problem_class.model.send is SendMode.BROADCAST:
            return _pick(LETTERS, "msg", seed, state)
        return _pick(LETTERS, "msg", seed, state, port)

    def transition(state: str, padded: tuple[Any, ...]) -> int:
        return _pick((0, 1), "next", seed, state, class_view(problem_class, padded))

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset(states),
        stopping_states=frozenset({0, 1}),
        messages=frozenset(LETTERS),
        initial_states={
            degree: _pick(states, "init", seed, degree) for degree in range(delta + 1)
        },
        message_table=message,
        transition_table=transition,
        no_message=NO_MESSAGE,
    )


__all__ = [
    "LETTERS",
    "class_view",
    "random_machine",
    "reference_machine",
]
