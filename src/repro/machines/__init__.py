"""Distributed state machines and the seven weak models.

* :mod:`~repro.machines.models` -- the receive/send modes, the algorithm
  models ``Vector``, ``Multiset``, ``Set``, ``Broadcast`` and their
  intersections, and the seven problem classes VVc, VV, MV, SV, VB, MB, SB.
* :mod:`~repro.machines.multiset` -- an immutable multiset used to deliver
  messages in the Multiset models.
* :mod:`~repro.machines.algorithm` -- the ergonomic :class:`Algorithm` base
  classes that examples and library algorithms implement.
* :mod:`~repro.machines.state_machine` -- the paper's formal tuple
  ``(Y, Z, z0, M, m0, mu, delta)`` and adapters to/from :class:`Algorithm`.
* :mod:`~repro.machines.inspection` -- empirical membership checks for the
  algorithm classes.
* :mod:`~repro.machines.library` -- delta-parametric reference and random
  machines of every class, the workloads of the Theorem 2 correspondence
  pipeline.
"""

from repro.machines.models import (
    ALGORITHM_MODELS,
    Model,
    ProblemClass,
    ReceiveMode,
    SendMode,
)
from repro.machines.multiset import FrozenMultiset
from repro.machines.algorithm import (
    Algorithm,
    BroadcastAlgorithm,
    MultisetAlgorithm,
    MultisetBroadcastAlgorithm,
    SetAlgorithm,
    SetBroadcastAlgorithm,
    VectorAlgorithm,
)
from repro.machines.state_machine import (
    FiniteStateMachine,
    StateMachine,
    algorithm_from_machine,
    machine_from_algorithm,
)
from repro.machines.adapters import ModelUpcast, as_model
from repro.machines.fastpath import FastPathAlgorithm, fast_path
from repro.machines.library import class_view, random_machine, reference_machine
from repro.machines.inspection import (
    is_broadcast_machine,
    respects_multiset_semantics,
    respects_set_semantics,
)

__all__ = [
    "ALGORITHM_MODELS",
    "Model",
    "ProblemClass",
    "ReceiveMode",
    "SendMode",
    "FrozenMultiset",
    "Algorithm",
    "BroadcastAlgorithm",
    "MultisetAlgorithm",
    "MultisetBroadcastAlgorithm",
    "SetAlgorithm",
    "SetBroadcastAlgorithm",
    "VectorAlgorithm",
    "ModelUpcast",
    "as_model",
    "FastPathAlgorithm",
    "fast_path",
    "FiniteStateMachine",
    "StateMachine",
    "algorithm_from_machine",
    "machine_from_algorithm",
    "is_broadcast_machine",
    "respects_multiset_semantics",
    "respects_set_semantics",
    "class_view",
    "random_machine",
    "reference_machine",
]
