"""Ergonomic distributed algorithms.

The paper defines algorithms as state machines ``(Y, Z, z0, M, m0, mu, delta)``
(Section 1.1).  Writing algorithms directly in that form is verbose, so the
library offers :class:`Algorithm`: a small object with an initial-state rule, a
message-construction rule and a transition rule, specialised per model by the
subclasses below.  Halting is expressed by returning an :class:`Output` value
from ``initial_state`` or ``transition``; a halted node no longer sends
messages or changes state, exactly as in the paper.

The adapters in :mod:`repro.machines.state_machine` convert between this
representation and the formal tuple.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.machines.models import (
    BROADCAST_MODEL,
    MULTISET_BROADCAST_MODEL,
    MULTISET_MODEL,
    SET_BROADCAST_MODEL,
    SET_MODEL,
    VECTOR_MODEL,
    Model,
    SendMode,
)

#: The "no message" symbol ``m0`` of the paper.  Halted nodes send it, and the
#: received message vector is padded with it up to length ``Delta``.
NO_MESSAGE: Any = ("__m0__",)


@dataclass(frozen=True)
class Output:
    """A stopping state carrying the node's local output.

    Returning ``Output(value)`` from :meth:`Algorithm.initial_state` or
    :meth:`Algorithm.transition` halts the node with local output ``value``.
    """

    value: Any


class Algorithm(abc.ABC):
    """Base class for deterministic anonymous distributed algorithms.

    Subclasses choose a model by deriving from one of the six concrete bases
    (:class:`VectorAlgorithm`, :class:`MultisetAlgorithm`,
    :class:`SetAlgorithm`, :class:`BroadcastAlgorithm`,
    :class:`MultisetBroadcastAlgorithm`, :class:`SetBroadcastAlgorithm`) and
    implement:

    * :meth:`initial_state` -- the state of a node given its degree;
    * :meth:`send` (port-addressed models) or :meth:`broadcast` (broadcast
      models) -- the outgoing message(s) of a non-halted node;
    * :meth:`transition` -- the new state given the current state and the
      received messages, presented as a tuple, :class:`FrozenMultiset` or
      frozenset according to the model's receive mode.

    States and messages must be hashable values.
    """

    #: The algorithm model; set by the concrete base classes.
    model: ClassVar[Model]

    @property
    def name(self) -> str:
        """A human-readable name (defaults to the class name)."""
        return type(self).__name__

    # ------------------------------------------------------------------ #
    # The three rules
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def initial_state(self, degree: int) -> Any:
        """The initial state ``z0(degree)`` of a node of the given degree."""

    def initial_state_with_input(self, degree: int, local_input: Any) -> Any:
        """The initial state of a node given its degree and its local input.

        Section 3.4 of the paper extends the models to structures ``(V, E, f)``
        where every node additionally carries a local input ``f(u)``.  The
        default implementation ignores the input, so ordinary (unlabelled)
        algorithms work unchanged; algorithms for labelled graphs override
        this method instead of :meth:`initial_state`.
        """
        return self.initial_state(degree)

    def send(self, state: Any, port: int) -> Any:
        """The message sent to output port ``port`` (port-addressed models).

        Broadcast-model algorithms do not override this; the runner calls
        :meth:`broadcast` for them instead.
        """
        if self.model.send is SendMode.BROADCAST:
            return self.broadcast(state)
        raise NotImplementedError(f"{self.name} must implement send()")

    def broadcast(self, state: Any) -> Any:
        """The single message sent to every output port (broadcast models)."""
        raise NotImplementedError(f"{self.name} must implement broadcast()")

    @abc.abstractmethod
    def transition(self, state: Any, received: Any) -> Any:
        """The new state after receiving ``received`` in the current round."""

    # ------------------------------------------------------------------ #
    # Halting protocol
    # ------------------------------------------------------------------ #

    def is_stopping(self, state: Any) -> bool:
        """Whether ``state`` is a stopping state."""
        return isinstance(state, Output)

    def output(self, state: Any) -> Any:
        """The local output encoded by a stopping state."""
        if isinstance(state, Output):
            return state.value
        raise ValueError(f"{state!r} is not a stopping state of {self.name}")


class VectorAlgorithm(Algorithm):
    """An algorithm in class ``Vector``: port-addressed send, vector receive."""

    model = VECTOR_MODEL


class MultisetAlgorithm(Algorithm):
    """An algorithm in class ``Multiset``: port-addressed send, multiset receive."""

    model = MULTISET_MODEL


class SetAlgorithm(Algorithm):
    """An algorithm in class ``Set``: port-addressed send, set receive."""

    model = SET_MODEL


class BroadcastAlgorithm(Algorithm):
    """An algorithm in class ``Broadcast``: broadcast send, vector receive."""

    model = BROADCAST_MODEL


class MultisetBroadcastAlgorithm(Algorithm):
    """An algorithm in ``Multiset ∩ Broadcast``: broadcast send, multiset receive."""

    model = MULTISET_BROADCAST_MODEL


class SetBroadcastAlgorithm(Algorithm):
    """An algorithm in ``Set ∩ Broadcast``: broadcast send, set receive."""

    model = SET_BROADCAST_MODEL
