"""An immutable, hashable multiset.

Algorithms in the Multiset models (MV, MB) receive the *multiset* of incoming
messages: the input-port order is hidden but multiplicities are preserved
(Figure 3).  Python's :class:`collections.Counter` is mutable and unhashable,
so messages delivered to such algorithms are wrapped in
:class:`FrozenMultiset`, a small value type that supports counting, iteration
(with multiplicity), equality and hashing.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator
from typing import Any


class FrozenMultiset:
    """An immutable multiset over hashable elements.

    Examples
    --------
    >>> m = FrozenMultiset(["a", "b", "a"])
    >>> m.count("a")
    2
    >>> m == FrozenMultiset(["b", "a", "a"])
    True
    >>> sorted(m.support(), key=str)
    ['a', 'b']
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        if isinstance(elements, FrozenMultiset):
            counts: dict[Hashable, int] = dict(elements._counts)
        else:
            counts = dict(Counter(elements))
        self._counts = counts
        self._hash: int | None = None

    @classmethod
    def from_counts(cls, counts: dict[Hashable, int]) -> "FrozenMultiset":
        """Build a multiset from an element-to-multiplicity mapping."""
        result = cls()
        cleaned = {element: count for element, count in counts.items() if count > 0}
        if any(count < 0 for count in counts.values()):
            raise ValueError("multiplicities must be non-negative")
        result._counts = cleaned
        return result

    def count(self, element: Hashable) -> int:
        """The multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def support(self) -> frozenset[Hashable]:
        """The set of distinct elements."""
        return frozenset(self._counts)

    def counts(self) -> dict[Hashable, int]:
        """A copy of the element-to-multiplicity mapping."""
        return dict(self._counts)

    def to_set(self) -> frozenset[Hashable]:
        """Forget multiplicities (the Set projection of Figure 3)."""
        return frozenset(self._counts)

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def __iter__(self) -> Iterator[Hashable]:
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrozenMultiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{element!r}: {count}" for element, count in self._counts.items())
        return f"FrozenMultiset({{{inner}}})"
