"""The formal distributed state machine of Section 1.1 and adapters.

A distributed state machine for the family ``F(Delta)`` is a tuple
``A = (Y, Z, z0, M, m0, mu, delta)``:

* ``Y`` -- finite set of stopping states,
* ``Z`` -- set of intermediate states,
* ``z0`` -- initial state as a function of the node degree,
* ``M``, ``m0`` -- messages and the "no message" symbol,
* ``mu(z, i)`` -- the message sent to output port ``i``,
* ``delta(z, vector)`` -- the state transition on a received message vector of
  length ``Delta`` (padded with ``m0``).

:class:`StateMachine` represents such a tuple with callables;
:class:`FiniteStateMachine` additionally carries explicit finite state and
message sets, which is what the modal compilation of Theorem 2 (parts 3-4)
needs in order to enumerate the formulas ``phi_{z,t}`` and ``theta_{m,j,t}``.
The adapters convert between the ergonomic :class:`~repro.machines.algorithm.
Algorithm` representation and the formal one; round-tripping preserves the
execution semantics (checked in the test suite).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.machines.algorithm import NO_MESSAGE, Algorithm, Output, VectorAlgorithm
from repro.machines.models import Model, ReceiveMode, SendMode, VECTOR_MODEL


@dataclass(frozen=True)
class StateMachine:
    """The paper's tuple ``(Y, Z, z0, M, m0, mu, delta)`` with callable components.

    ``delta_bound`` is the ``Delta`` for which the machine is defined: message
    vectors passed to ``transition`` always have exactly that length.
    """

    delta_bound: int
    initial_state: Callable[[int], Any]
    message: Callable[[Any, int], Any]
    transition: Callable[[Any, tuple[Any, ...]], Any]
    is_stopping: Callable[[Any], bool]
    output: Callable[[Any], Any]
    no_message: Any = NO_MESSAGE

    def padded_transition(self, state: Any, messages: Sequence[Any]) -> Any:
        """Apply ``delta`` after padding ``messages`` with ``m0`` to length ``Delta``."""
        if len(messages) > self.delta_bound:
            raise ValueError(
                f"received {len(messages)} messages but the machine is defined for "
                f"Delta = {self.delta_bound}"
            )
        padded = tuple(messages) + (self.no_message,) * (self.delta_bound - len(messages))
        if self.is_stopping(state):
            return state
        return self.transition(state, padded)

    def outgoing(self, state: Any, port: int) -> Any:
        """``mu(state, port)``, extended so that halted nodes send ``m0``."""
        if self.is_stopping(state):
            return self.no_message
        return self.message(state, port)


@dataclass(frozen=True)
class FiniteStateMachine:
    """A state machine with explicit finite state and message sets.

    The modal compilation of Theorem 2 enumerates all intermediate states and
    messages, so they must be provided explicitly here.  ``initial_states``
    maps each degree ``0..Delta`` to a state; ``message_table`` maps
    ``(state, port)`` to a message; ``transition_table`` is a callable
    ``delta(state, padded_vector)`` (a callable rather than a table because the
    domain ``Z x M^Delta`` is large but cheap to evaluate on demand).
    """

    delta_bound: int
    intermediate_states: frozenset[Any]
    stopping_states: frozenset[Any]
    messages: frozenset[Any]
    initial_states: dict[int, Any]
    message_table: Callable[[Any, int], Any]
    transition_table: Callable[[Any, tuple[Any, ...]], Any]
    no_message: Any = NO_MESSAGE
    output_map: Callable[[Any], Any] = field(default=lambda state: state)

    def __post_init__(self) -> None:
        overlap = self.intermediate_states & self.stopping_states
        if overlap:
            raise ValueError(f"states {overlap!r} are both intermediate and stopping")
        for degree, state in self.initial_states.items():
            if state not in self.intermediate_states and state not in self.stopping_states:
                raise ValueError(f"initial state for degree {degree} is not a known state")

    def as_state_machine(self) -> StateMachine:
        """View this finite machine through the generic :class:`StateMachine` interface."""
        stopping = self.stopping_states

        return StateMachine(
            delta_bound=self.delta_bound,
            initial_state=lambda degree: self.initial_states[degree],
            message=self.message_table,
            transition=self.transition_table,
            is_stopping=lambda state: state in stopping,
            output=self.output_map,
            no_message=self.no_message,
        )

    def all_states(self) -> frozenset[Any]:
        return self.intermediate_states | self.stopping_states


# ---------------------------------------------------------------------- #
# Adapters
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _AdapterState:
    """State wrapper used when converting an :class:`Algorithm` to a machine.

    The formal ``delta`` receives a padded vector of length ``Delta`` and has
    no other way of knowing the node degree, so the degree is recorded in the
    state (the paper does the same implicitly through ``z0``).
    """

    degree: int
    inner: Any


def machine_from_algorithm(algorithm: Algorithm, delta_bound: int) -> StateMachine:
    """The formal state machine ``A_Delta`` corresponding to an algorithm.

    The machine's receive semantics are always Vector (the formal definition);
    the algorithm's own receive mode is applied as a projection inside
    ``delta``, which is exactly how the paper defines the subclasses
    ``Multiset`` and ``Set`` (invariance of ``delta`` under the projection).
    """
    model = algorithm.model

    def initial(degree: int) -> Any:
        return _AdapterState(degree, algorithm.initial_state(degree))

    def message(state: _AdapterState, port: int) -> Any:
        if algorithm.is_stopping(state.inner):
            return NO_MESSAGE
        if model.send is SendMode.BROADCAST:
            return algorithm.broadcast(state.inner)
        return algorithm.send(state.inner, port)

    def transition(state: _AdapterState, padded: tuple[Any, ...]) -> Any:
        if algorithm.is_stopping(state.inner):
            return state
        received = padded[: state.degree]
        projected = model.receive.project(received)
        return _AdapterState(state.degree, algorithm.transition(state.inner, projected))

    def is_stopping(state: Any) -> bool:
        return isinstance(state, _AdapterState) and algorithm.is_stopping(state.inner)

    def output(state: _AdapterState) -> Any:
        return algorithm.output(state.inner)

    return StateMachine(
        delta_bound=delta_bound,
        initial_state=initial,
        message=message,
        transition=transition,
        is_stopping=is_stopping,
        output=output,
    )


class MachineAlgorithm(VectorAlgorithm):
    """An :class:`Algorithm` wrapper around a formal :class:`StateMachine`."""

    def __init__(self, machine: StateMachine, label: str = "MachineAlgorithm") -> None:
        self._machine = machine
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    @property
    def machine(self) -> StateMachine:
        return self._machine

    def initial_state(self, degree: int) -> Any:
        return self._machine.initial_state(degree)

    def send(self, state: Any, port: int) -> Any:
        return self._machine.outgoing(state, port)

    def transition(self, state: Any, received: tuple[Any, ...]) -> Any:
        return self._machine.padded_transition(state, received)

    def is_stopping(self, state: Any) -> bool:
        return self._machine.is_stopping(state)

    def output(self, state: Any) -> Any:
        return self._machine.output(state)


def algorithm_from_machine(machine: StateMachine, label: str = "MachineAlgorithm") -> Algorithm:
    """Wrap a formal state machine as a Vector-model :class:`Algorithm`."""
    return MachineAlgorithm(machine, label=label)
