"""The seven weak models of distributed computing (Sections 1.5 and 1.6).

A model is determined by two independent choices:

* how a node *receives* (:class:`ReceiveMode`): a vector of messages indexed
  by input port, a multiset of messages (no input port numbers), or a set of
  messages (neither port numbers nor multiplicities); and
* how a node *sends* (:class:`SendMode`): a possibly different message per
  output port, or a single broadcast message.

Combining the modes gives the algorithm classes of Section 1.5 (``Vector``,
``Multiset``, ``Set``, ``Broadcast``, ``Multiset ∩ Broadcast``,
``Set ∩ Broadcast``).  A :class:`ProblemClass` pairs an algorithm model with
the port-numbering assumption (arbitrary or consistent), yielding the seven
classes VVc, VV, MV, SV, VB, MB and SB of Section 1.6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.machines.multiset import FrozenMultiset


class ReceiveMode(enum.Enum):
    """How incoming messages are presented to the algorithm (Figure 3)."""

    VECTOR = "vector"
    MULTISET = "multiset"
    SET = "set"

    def project(self, messages: Sequence[Any]) -> Any:
        """Project a vector of received messages into this mode's view.

        ``messages`` is the raw vector indexed by input port (without the
        ``m0`` padding).  VECTOR keeps the tuple, MULTISET forgets the order,
        SET additionally forgets multiplicities.
        """
        if self is ReceiveMode.VECTOR:
            return tuple(messages)
        if self is ReceiveMode.MULTISET:
            return FrozenMultiset(messages)
        return frozenset(messages)

    def is_weaker_or_equal(self, other: "ReceiveMode") -> bool:
        """Whether this mode reveals at most as much information as ``other``."""
        order = {ReceiveMode.SET: 0, ReceiveMode.MULTISET: 1, ReceiveMode.VECTOR: 2}
        return order[self] <= order[other]


class SendMode(enum.Enum):
    """How outgoing messages are constructed (Figure 4)."""

    PORT = "port"
    BROADCAST = "broadcast"

    def is_weaker_or_equal(self, other: "SendMode") -> bool:
        order = {SendMode.BROADCAST: 0, SendMode.PORT: 1}
        return order[self] <= order[other]


@dataclass(frozen=True)
class Model:
    """An algorithm model: a receive mode paired with a send mode."""

    receive: ReceiveMode
    send: SendMode

    @property
    def name(self) -> str:
        receive_letter = {
            ReceiveMode.VECTOR: "V",
            ReceiveMode.MULTISET: "M",
            ReceiveMode.SET: "S",
        }[self.receive]
        send_letter = {SendMode.PORT: "V", SendMode.BROADCAST: "B"}[self.send]
        return receive_letter + send_letter

    def is_weaker_or_equal(self, other: "Model") -> bool:
        """Whether every algorithm of this model is trivially one of ``other``.

        These are exactly the containments of Figure 5a (before the collapse
        results of the paper are applied).
        """
        return self.receive.is_weaker_or_equal(other.receive) and self.send.is_weaker_or_equal(
            other.send
        )

    def __str__(self) -> str:
        return self.name


VECTOR_MODEL = Model(ReceiveMode.VECTOR, SendMode.PORT)
MULTISET_MODEL = Model(ReceiveMode.MULTISET, SendMode.PORT)
SET_MODEL = Model(ReceiveMode.SET, SendMode.PORT)
BROADCAST_MODEL = Model(ReceiveMode.VECTOR, SendMode.BROADCAST)
MULTISET_BROADCAST_MODEL = Model(ReceiveMode.MULTISET, SendMode.BROADCAST)
SET_BROADCAST_MODEL = Model(ReceiveMode.SET, SendMode.BROADCAST)

ALGORITHM_MODELS: tuple[Model, ...] = (
    VECTOR_MODEL,
    MULTISET_MODEL,
    SET_MODEL,
    BROADCAST_MODEL,
    MULTISET_BROADCAST_MODEL,
    SET_BROADCAST_MODEL,
)


class ProblemClass(enum.Enum):
    """The seven classes of graph problems of Section 1.6."""

    VVC = "VVc"
    VV = "VV"
    MV = "MV"
    SV = "SV"
    VB = "VB"
    MB = "MB"
    SB = "SB"

    @property
    def model(self) -> Model:
        """The algorithm model whose algorithms witness membership in the class."""
        return _CLASS_TO_MODEL[self]

    @property
    def requires_consistency(self) -> bool:
        """Whether the class only quantifies over consistent port numberings."""
        return self is ProblemClass.VVC

    def trivially_contains(self, other: "ProblemClass") -> bool:
        """The syntactic containments of Figure 5a: ``other ⊆ self``.

        A weaker model solves fewer problems, and assuming consistency only
        helps, so ``other ⊆ self`` holds trivially whenever ``other``'s model
        is weaker than ``self``'s and ``self`` assumes at least as much about
        the port numbering.
        """
        models_ordered = other.model.is_weaker_or_equal(self.model)
        consistency_ordered = other.requires_consistency <= self.requires_consistency
        return models_ordered and consistency_ordered

    def __str__(self) -> str:
        return self.value


_CLASS_TO_MODEL: dict[ProblemClass, Model] = {
    ProblemClass.VVC: VECTOR_MODEL,
    ProblemClass.VV: VECTOR_MODEL,
    ProblemClass.MV: MULTISET_MODEL,
    ProblemClass.SV: SET_MODEL,
    ProblemClass.VB: BROADCAST_MODEL,
    ProblemClass.MB: MULTISET_BROADCAST_MODEL,
    ProblemClass.SB: SET_BROADCAST_MODEL,
}
