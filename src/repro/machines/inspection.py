"""Empirical membership checks for the algorithm classes of Section 1.5.

Membership of a state machine in ``Multiset``, ``Set`` or ``Broadcast`` is a
semantic closure property of its ``mu`` and ``delta`` functions:

* ``Multiset``: ``delta`` is invariant under permutations of the received
  message vector;
* ``Set``: ``delta`` depends only on the set of received messages;
* ``Broadcast``: ``mu`` sends the same message to every port.

These properties are undecidable for arbitrary callables, so the checks here
are *empirical*: they verify the property on a supplied finite collection of
states and message vectors (exhaustively for :class:`FiniteStateMachine`
instances with small message alphabets).  A ``False`` answer is a proof of
non-membership; a ``True`` answer is evidence relative to the sample.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from typing import Any

from repro.machines.state_machine import FiniteStateMachine, StateMachine


def _vectors_to_check(
    machine: StateMachine,
    states: Iterable[Any],
    message_vectors: Iterable[Sequence[Any]] | None,
    finite: FiniteStateMachine | None,
    max_vectors: int,
) -> list[tuple[Any, ...]]:
    if message_vectors is not None:
        return [tuple(vector) for vector in message_vectors]
    if finite is None:
        raise ValueError(
            "message_vectors must be provided unless the machine is a FiniteStateMachine"
        )
    alphabet = sorted(finite.messages | {finite.no_message}, key=repr)
    vectors = []
    for vector in itertools.product(alphabet, repeat=finite.delta_bound):
        vectors.append(vector)
        if len(vectors) >= max_vectors:
            break
    return vectors


def respects_multiset_semantics(
    machine: StateMachine | FiniteStateMachine,
    states: Iterable[Any] | None = None,
    message_vectors: Iterable[Sequence[Any]] | None = None,
    max_vectors: int = 4096,
) -> bool:
    """Whether ``delta`` is invariant under permuting the received vector."""
    finite = machine if isinstance(machine, FiniteStateMachine) else None
    generic = finite.as_state_machine() if finite else machine
    if states is None:
        if finite is None:
            raise ValueError("states must be provided unless the machine is finite")
        states = finite.intermediate_states
    vectors = _vectors_to_check(generic, states, message_vectors, finite, max_vectors)
    for state in states:
        if generic.is_stopping(state):
            continue
        for vector in vectors:
            baseline = generic.transition(state, tuple(vector))
            for permutation in itertools.permutations(vector):
                if generic.transition(state, permutation) != baseline:
                    return False
    return True


def respects_set_semantics(
    machine: StateMachine | FiniteStateMachine,
    states: Iterable[Any] | None = None,
    message_vectors: Iterable[Sequence[Any]] | None = None,
    max_vectors: int = 4096,
) -> bool:
    """Whether ``delta`` depends only on the set of received messages."""
    finite = machine if isinstance(machine, FiniteStateMachine) else None
    generic = finite.as_state_machine() if finite else machine
    if states is None:
        if finite is None:
            raise ValueError("states must be provided unless the machine is finite")
        states = finite.intermediate_states
    vectors = _vectors_to_check(generic, states, message_vectors, finite, max_vectors)
    for state in states:
        if generic.is_stopping(state):
            continue
        by_set: dict[frozenset[Any], Any] = {}
        for vector in vectors:
            key = frozenset(vector)
            outcome = generic.transition(state, tuple(vector))
            if key in by_set and by_set[key] != outcome:
                return False
            by_set[key] = outcome
    return True


def is_broadcast_machine(
    machine: StateMachine | FiniteStateMachine,
    states: Iterable[Any] | None = None,
) -> bool:
    """Whether ``mu`` sends the same message to every output port."""
    finite = machine if isinstance(machine, FiniteStateMachine) else None
    generic = finite.as_state_machine() if finite else machine
    if states is None:
        if finite is None:
            raise ValueError("states must be provided unless the machine is finite")
        states = finite.intermediate_states
    delta_bound = generic.delta_bound
    for state in states:
        if generic.is_stopping(state):
            continue
        messages = {generic.message(state, port) for port in range(1, delta_bound + 1)}
        if len(messages) > 1:
            return False
    return True
