"""repro -- an executable reproduction of *Weak Models of Distributed Computing,
with Connections to Modal Logic* (Hella, Järvisalo, Kuusisto, Laurinharju,
Lempiäinen, Luosto, Suomela, Virtema; PODC 2012).

The library turns every object of the paper into runnable code:

* anonymous deterministic distributed algorithms in the seven weak models
  (VVc, VV, MV, SV, VB, MB, SB) and a shared synchronous execution engine
  (:mod:`repro.machines`, :mod:`repro.execution`);
* graphs, port numberings, covers and matchings (:mod:`repro.graphs`);
* the modal logics ML/GML/MML/GMML, Kripke encodings of port-numbered graphs,
  a model checker and (graded) bisimulation (:mod:`repro.logic`,
  :mod:`repro.modal`);
* the paper's main results as executable constructions and checkable
  certificates: the simulation theorems, the separation witnesses and the
  resulting linear order (:mod:`repro.core`, :mod:`repro.separations`);
* graph problems, concrete algorithms and an experiment harness regenerating
  every figure/theorem of the paper (:mod:`repro.problems`,
  :mod:`repro.algorithms`, :mod:`repro.experiments`).

Quickstart::

    from repro import (
        cycle_graph, consistent_port_numbering, run,
        MultisetBroadcastAlgorithm, Output,
    )

    class CountNeighbours(MultisetBroadcastAlgorithm):
        def initial_state(self, degree):
            return degree
        def broadcast(self, state):
            return "hello"
        def transition(self, state, received):
            return Output(len(received))

    result = run(CountNeighbours(), cycle_graph(5))
    print(result.outputs)   # every node counted its two neighbours
"""

from repro.graphs import (
    Graph,
    PortNumbering,
    all_port_numberings,
    complete_graph,
    consistent_port_numbering,
    cycle_graph,
    figure9_graph,
    path_graph,
    random_port_numbering,
    star_graph,
    symmetric_port_numbering,
)
from repro.machines import (
    Algorithm,
    BroadcastAlgorithm,
    FrozenMultiset,
    Model,
    MultisetAlgorithm,
    MultisetBroadcastAlgorithm,
    ProblemClass,
    ReceiveMode,
    SendMode,
    SetAlgorithm,
    SetBroadcastAlgorithm,
    VectorAlgorithm,
)
from repro.machines.algorithm import Output
from repro.engines import available_engines, resolve_engine
from repro.execution import CompiledInstance, ExecutionResult, run, run_many
from repro.logic import KripkeModel, extension, parse_formula, satisfies
from repro.modal import algorithm_for_formula, formula_for_machine, kripke_encoding
from repro.core import (
    simulate_broadcast_with_multiset_broadcast,
    simulate_multiset_with_set,
    simulate_vector_with_multiset,
    summary,
)

__version__ = "1.0.0"

#: Campaign API resolved lazily: the subsystem pulls in the algorithm and
#: logic layers, which ``import repro`` should not pay for up front.
_CAMPAIGN_EXPORTS = (
    "CampaignSpec",
    "GraphGrid",
    "ResultStore",
    "Scenario",
    "builtin_spec",
    "run_campaign",
)


def __getattr__(name: str):
    if name == "campaign" or name in _CAMPAIGN_EXPORTS:
        import importlib

        campaign = importlib.import_module("repro.campaign")
        return campaign if name == "campaign" else getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# The campaign names stay out of __all__ deliberately: a star-import would
# otherwise trigger __getattr__ for each of them and eagerly pull in the whole
# subsystem.  They remain reachable as ``repro.CampaignSpec`` etc.
__all__ = [
    "Graph",
    "PortNumbering",
    "all_port_numberings",
    "complete_graph",
    "consistent_port_numbering",
    "cycle_graph",
    "figure9_graph",
    "path_graph",
    "random_port_numbering",
    "star_graph",
    "symmetric_port_numbering",
    "Algorithm",
    "BroadcastAlgorithm",
    "FrozenMultiset",
    "Model",
    "MultisetAlgorithm",
    "MultisetBroadcastAlgorithm",
    "ProblemClass",
    "ReceiveMode",
    "SendMode",
    "SetAlgorithm",
    "SetBroadcastAlgorithm",
    "VectorAlgorithm",
    "Output",
    "available_engines",
    "resolve_engine",
    "CompiledInstance",
    "ExecutionResult",
    "run",
    "run_many",
    "KripkeModel",
    "extension",
    "parse_formula",
    "satisfies",
    "algorithm_for_formula",
    "formula_for_machine",
    "kripke_encoding",
    "simulate_broadcast_with_multiset_broadcast",
    "simulate_multiset_with_set",
    "simulate_vector_with_multiset",
    "summary",
    "__version__",
]
