"""Setuptools shim so that editable installs work without network access.

All metadata lives in pyproject.toml; this file only exists because the
offline environment lacks the ``wheel`` package required by PEP 660 editable
installs with older setuptools.
"""

from setuptools import setup

setup()
